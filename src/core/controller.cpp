#include "core/controller.hpp"

#include "check/plan_checker.hpp"
#include "util/error.hpp"

namespace palb {

void Scenario::validate() const {
  topology.validate();
  PALB_REQUIRE(arrivals.size() == topology.num_classes(),
               "one arrival-trace row per class required");
  for (const auto& row : arrivals) {
    PALB_REQUIRE(row.size() == topology.num_frontends(),
                 "one arrival trace per front-end required");
    for (const auto& trace : row) {
      PALB_REQUIRE(!trace.empty(), "arrival traces must not be empty");
    }
  }
  PALB_REQUIRE(prices.size() == topology.num_datacenters(),
               "one price trace per data center required");
  for (const auto& trace : prices) {
    PALB_REQUIRE(!trace.empty(), "price traces must not be empty");
  }
  PALB_REQUIRE(slot_seconds > 0.0, "slot length must be > 0");
}

SlotInput Scenario::slot_input(std::size_t t) const {
  SlotInput input;
  input.slot_seconds = slot_seconds;
  input.arrival_rate.assign(topology.num_classes(),
                            std::vector<double>(topology.num_frontends()));
  for (std::size_t k = 0; k < topology.num_classes(); ++k) {
    for (std::size_t s = 0; s < topology.num_frontends(); ++s) {
      input.arrival_rate[k][s] = arrivals[k][s].at(t);
    }
  }
  input.price.resize(topology.num_datacenters());
  for (std::size_t l = 0; l < topology.num_datacenters(); ++l) {
    input.price[l] = prices[l].at(t);
  }
  return input;
}

std::vector<double> RunResult::net_profit_series() const {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const auto& s : slots) out.push_back(s.net_profit());
  return out;
}

std::vector<double> RunResult::class_dc_rate_series(std::size_t k,
                                                    std::size_t l) const {
  std::vector<double> out;
  out.reserve(plans.size());
  for (const auto& p : plans) out.push_back(p.class_dc_rate(k, l));
  return out;
}

SlotController::SlotController(Scenario scenario)
    : scenario_(std::move(scenario)) {
  scenario_.validate();
}

RunResult SlotController::run(Policy& policy, std::size_t num_slots,
                              std::size_t first_slot) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  RunResult result;
  result.slots.reserve(num_slots);
  result.plans.reserve(num_slots);
  for (std::size_t t = 0; t < num_slots; ++t) {
    const SlotInput input = scenario_.slot_input(first_slot + t);
    DispatchPlan plan = policy.plan_slot(scenario_.topology, input);
    // Policies self-check, but third-party Policy implementations enter
    // the run loop here — audit at the hand-off too.
    check::maybe_check_plan(scenario_.topology, input, plan,
                            "SlotController");
    result.slots.push_back(
        evaluate_plan(scenario_.topology, input, plan));
    result.plans.push_back(std::move(plan));
  }
  result.total = accumulate(result.slots);
  return result;
}

}  // namespace palb
