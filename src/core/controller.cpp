#include "core/controller.hpp"

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "check/plan_checker.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

void Scenario::validate() const {
  PALB_REQUIRE(!topology.classes.empty() && !topology.frontends.empty() &&
                   !topology.datacenters.empty(),
               "scenario topology must have at least one class, front-end "
               "and data center");
  topology.validate();
  PALB_REQUIRE(arrivals.size() == topology.num_classes(),
               "one arrival-trace row per class required");
  // All arrival traces must agree on the horizon: a short trace would
  // otherwise silently wrap (RateTrace::at is modular) out of phase with
  // the others. Prices likewise, though the two horizons may differ
  // (e.g. 24 price slots under a week of arrivals).
  std::size_t arrival_slots = 0;
  for (std::size_t k = 0; k < arrivals.size(); ++k) {
    const auto& row = arrivals[k];
    PALB_REQUIRE(row.size() == topology.num_frontends(),
                 "one arrival trace per front-end required");
    for (std::size_t s = 0; s < row.size(); ++s) {
      const auto& trace = row[s];
      const std::string where = "arrival trace (class " + std::to_string(k) +
                                ", front-end " + std::to_string(s) + ")";
      PALB_REQUIRE(!trace.empty(), where + " must not be empty");
      if (arrival_slots == 0) arrival_slots = trace.slots();
      PALB_REQUIRE(trace.slots() == arrival_slots,
                   where + " has " + std::to_string(trace.slots()) +
                       " slots; other traces have " +
                       std::to_string(arrival_slots));
      for (std::size_t t = 0; t < trace.slots(); ++t) {
        const double r = trace.at(t);
        PALB_REQUIRE(std::isfinite(r) && r >= 0.0,
                     where + " slot " + std::to_string(t) +
                         " is not a finite non-negative rate: " +
                         std::to_string(r));
      }
    }
  }
  PALB_REQUIRE(prices.size() == topology.num_datacenters(),
               "one price trace per data center required");
  std::size_t price_slots = 0;
  for (std::size_t l = 0; l < prices.size(); ++l) {
    const auto& trace = prices[l];
    const std::string where =
        "price trace (data center " + std::to_string(l) + ")";
    PALB_REQUIRE(!trace.empty(), where + " must not be empty");
    if (price_slots == 0) price_slots = trace.size();
    PALB_REQUIRE(trace.size() == price_slots,
                 where + " has " + std::to_string(trace.size()) +
                     " slots; other price traces have " +
                     std::to_string(price_slots));
    for (std::size_t t = 0; t < trace.size(); ++t) {
      const double p = trace.at(t);
      PALB_REQUIRE(std::isfinite(p) && p >= 0.0,
                   where + " slot " + std::to_string(t) +
                       " is not a finite non-negative price: " +
                       std::to_string(p));
    }
  }
  PALB_REQUIRE(slot_seconds > 0.0, "slot length must be > 0");
}

SlotInput Scenario::slot_input(std::size_t t) const {
  SlotInput input;
  input.slot_seconds = slot_seconds;
  input.arrival_rate.assign(topology.num_classes(),
                            std::vector<double>(topology.num_frontends()));
  for (std::size_t k = 0; k < topology.num_classes(); ++k) {
    for (std::size_t s = 0; s < topology.num_frontends(); ++s) {
      const double r = arrivals[k][s].at(t);
      PALB_REQUIRE(std::isfinite(r) && r >= 0.0,
                   "arrival rate (class " + std::to_string(k) +
                       ", front-end " + std::to_string(s) + ", slot " +
                       std::to_string(t) +
                       ") is not a finite non-negative rate: " +
                       std::to_string(r));
      input.arrival_rate[k][s] = r;
    }
  }
  input.price.resize(topology.num_datacenters());
  for (std::size_t l = 0; l < topology.num_datacenters(); ++l) {
    const double p = prices[l].at(t);
    PALB_REQUIRE(std::isfinite(p) && p >= 0.0,
                 "price (data center " + std::to_string(l) + ", slot " +
                     std::to_string(t) +
                     ") is not a finite non-negative price: " +
                     std::to_string(p));
    input.price[l] = p;
  }
  return input;
}

std::size_t RunResult::total_repairs() const {
  std::size_t n = 0;
  for (const std::size_t a : repair_adjustments) n += a;
  return n;
}

std::vector<double> RunResult::net_profit_series() const {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const auto& s : slots) out.push_back(s.net_profit());
  return out;
}

std::vector<double> RunResult::class_dc_rate_series(std::size_t k,
                                                    std::size_t l) const {
  std::vector<double> out;
  out.reserve(plans.size());
  for (const auto& p : plans) out.push_back(p.class_dc_rate(k, l));
  return out;
}

SlotController::SlotController(Scenario scenario)
    : scenario_(std::move(scenario)) {
  scenario_.validate();
}

void SlotController::run_block(Policy& policy, std::size_t block_first,
                               std::size_t count, RunResult& into,
                               std::size_t offset) const {
  for (std::size_t t = 0; t < count; ++t) {
    const SlotInput input = scenario_.slot_input(block_first + t);
    DispatchPlan plan = policy.plan_slot(scenario_.topology, input);
    // Policies self-check, but third-party Policy implementations enter
    // the run loop here — audit at the hand-off too.
    check::maybe_check_plan(scenario_.topology, input, plan,
                            "SlotController");
    into.slots[offset + t] = evaluate_plan(scenario_.topology, input, plan);
    into.plans[offset + t] = std::move(plan);
  }
}

RunResult SlotController::run(Policy& policy, std::size_t num_slots,
                              std::size_t first_slot) const {
  return run(policy, num_slots, first_slot, RunOptions{});
}

RunResult SlotController::run(Policy& policy, std::size_t num_slots,
                              std::size_t first_slot,
                              const RunOptions& options) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  std::size_t workers = bounded_workers(
      options.workers == 0 ? 0 : options.workers, num_slots);

  // Parallel evaluation needs an independent policy per worker; a policy
  // that cannot clone itself runs serially (same plans, one core).
  std::vector<std::unique_ptr<Policy>> clones;
  if (workers > 1) {
    clones.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      clones.push_back(policy.clone());
      if (!clones.back()) {
        clones.clear();
        workers = 1;
        break;
      }
    }
  }

  RunResult result;
  result.slots.resize(num_slots);
  result.plans.resize(num_slots);

  if (workers <= 1) {
    const PolicyStats before = policy.stats();
    run_block(policy, first_slot, num_slots, result, 0);
    result.stats = policy.stats() - before;
  } else {
    // Contiguous blocks, one per worker: slot order inside a block keeps
    // each clone's warm-start chain intact, and writing through disjoint
    // [offset, offset+count) windows keeps collection deterministic.
    const std::size_t base = num_slots / workers;
    const std::size_t extra = num_slots % workers;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // offset,count
    std::size_t offset = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t count = base + (w < extra ? 1 : 0);
      blocks.emplace_back(offset, count);
      offset += count;
    }
    ThreadPool pool(workers);
    parallel_for(pool, workers, [&](std::size_t w) {
      const auto [block_offset, count] = blocks[w];
      if (count == 0) return;
      run_block(*clones[w], first_slot + block_offset, count, result,
                block_offset);
    });
    for (const auto& clone : clones) result.stats += clone->stats();
  }

  result.total = accumulate(result.slots);
  return result;
}

}  // namespace palb
