#include "core/controller.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "check/plan_checker.hpp"
#include "util/error.hpp"
#include "util/thread_pool.hpp"

namespace palb {

void Scenario::validate() const {
  topology.validate();
  PALB_REQUIRE(arrivals.size() == topology.num_classes(),
               "one arrival-trace row per class required");
  for (const auto& row : arrivals) {
    PALB_REQUIRE(row.size() == topology.num_frontends(),
                 "one arrival trace per front-end required");
    for (const auto& trace : row) {
      PALB_REQUIRE(!trace.empty(), "arrival traces must not be empty");
    }
  }
  PALB_REQUIRE(prices.size() == topology.num_datacenters(),
               "one price trace per data center required");
  for (const auto& trace : prices) {
    PALB_REQUIRE(!trace.empty(), "price traces must not be empty");
  }
  PALB_REQUIRE(slot_seconds > 0.0, "slot length must be > 0");
}

SlotInput Scenario::slot_input(std::size_t t) const {
  SlotInput input;
  input.slot_seconds = slot_seconds;
  input.arrival_rate.assign(topology.num_classes(),
                            std::vector<double>(topology.num_frontends()));
  for (std::size_t k = 0; k < topology.num_classes(); ++k) {
    for (std::size_t s = 0; s < topology.num_frontends(); ++s) {
      input.arrival_rate[k][s] = arrivals[k][s].at(t);
    }
  }
  input.price.resize(topology.num_datacenters());
  for (std::size_t l = 0; l < topology.num_datacenters(); ++l) {
    input.price[l] = prices[l].at(t);
  }
  return input;
}

std::vector<double> RunResult::net_profit_series() const {
  std::vector<double> out;
  out.reserve(slots.size());
  for (const auto& s : slots) out.push_back(s.net_profit());
  return out;
}

std::vector<double> RunResult::class_dc_rate_series(std::size_t k,
                                                    std::size_t l) const {
  std::vector<double> out;
  out.reserve(plans.size());
  for (const auto& p : plans) out.push_back(p.class_dc_rate(k, l));
  return out;
}

SlotController::SlotController(Scenario scenario)
    : scenario_(std::move(scenario)) {
  scenario_.validate();
}

void SlotController::run_block(Policy& policy, std::size_t block_first,
                               std::size_t count, RunResult& into,
                               std::size_t offset) const {
  for (std::size_t t = 0; t < count; ++t) {
    const SlotInput input = scenario_.slot_input(block_first + t);
    DispatchPlan plan = policy.plan_slot(scenario_.topology, input);
    // Policies self-check, but third-party Policy implementations enter
    // the run loop here — audit at the hand-off too.
    check::maybe_check_plan(scenario_.topology, input, plan,
                            "SlotController");
    into.slots[offset + t] = evaluate_plan(scenario_.topology, input, plan);
    into.plans[offset + t] = std::move(plan);
  }
}

RunResult SlotController::run(Policy& policy, std::size_t num_slots,
                              std::size_t first_slot) const {
  return run(policy, num_slots, first_slot, RunOptions{});
}

RunResult SlotController::run(Policy& policy, std::size_t num_slots,
                              std::size_t first_slot,
                              const RunOptions& options) const {
  PALB_REQUIRE(num_slots > 0, "need at least one slot");
  std::size_t workers = bounded_workers(
      options.workers == 0 ? 0 : options.workers, num_slots);

  // Parallel evaluation needs an independent policy per worker; a policy
  // that cannot clone itself runs serially (same plans, one core).
  std::vector<std::unique_ptr<Policy>> clones;
  if (workers > 1) {
    clones.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      clones.push_back(policy.clone());
      if (!clones.back()) {
        clones.clear();
        workers = 1;
        break;
      }
    }
  }

  RunResult result;
  result.slots.resize(num_slots);
  result.plans.resize(num_slots);

  if (workers <= 1) {
    const PolicyStats before = policy.stats();
    run_block(policy, first_slot, num_slots, result, 0);
    result.stats = policy.stats() - before;
  } else {
    // Contiguous blocks, one per worker: slot order inside a block keeps
    // each clone's warm-start chain intact, and writing through disjoint
    // [offset, offset+count) windows keeps collection deterministic.
    const std::size_t base = num_slots / workers;
    const std::size_t extra = num_slots % workers;
    std::vector<std::pair<std::size_t, std::size_t>> blocks;  // offset,count
    std::size_t offset = 0;
    for (std::size_t w = 0; w < workers; ++w) {
      const std::size_t count = base + (w < extra ? 1 : 0);
      blocks.emplace_back(offset, count);
      offset += count;
    }
    ThreadPool pool(workers);
    parallel_for(pool, workers, [&](std::size_t w) {
      const auto [block_offset, count] = blocks[w];
      if (count == 0) return;
      run_block(*clones[w], first_slot + block_offset, count, result,
                block_offset);
    });
    for (const auto& clone : clones) result.stats += clone->stats();
  }

  result.total = accumulate(result.slots);
  return result;
}

}  // namespace palb
