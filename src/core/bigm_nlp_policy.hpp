#pragma once

#include "core/policy.hpp"
#include "solver/nlp.hpp"

namespace palb {

/// Paper-faithful solver path (§IV-2/3): instead of conditioning on TUF
/// bands, keep the per-(class, DC) utility U_{k,l} as a *decision
/// variable*, tie it to the delay through the big-M constraint system
/// (Eqs. 11-13 / 17) materialized by StepTufBigM, and hand the resulting
/// non-convex NLP to a general solver — the paper used CPLEX/AIMMS, this
/// tree uses the in-house augmented-Lagrangian solver with multi-start.
///
/// Decision vector: routing x_{k,s,l}, per-server shares phi_{k,l}
/// (identical across a DC's homogeneous servers, which all stay powered
/// on while the DC carries load), utilities U_{k,l}. Delay enters as
/// R = 1/(phi C mu - X/M); constraints involving R are load-scaled so an
/// idle (class, DC) pair imposes nothing.
///
/// This path is intentionally slower and only near-optimal — it exists to
/// reproduce the paper's methodology and the Fig. 11 computation-time
/// behaviour; OptimizedPolicy is the production path.
class BigMNlpPolicy : public Policy {
 public:
  struct Options {
    double big_m = 1e5;
    double delta = 1e-6;
    int multistarts = 6;
    std::uint64_t seed = 0x5EEDull;
    AugLagSolver::Options nlp;
    /// Seed one extra multistart point from the previous slot's solution
    /// when every arrival rate and price drifted less than
    /// warm_start_tolerance (relative). Off by default: unlike the
    /// OptimizedPolicy incumbent bound, a seeded NLP start can *change*
    /// the returned (near-optimal) point, so plans then depend on which
    /// slot sequence this instance saw — 1-worker and N-worker
    /// SlotController runs may legitimately differ. Leave it off where
    /// bit-reproducibility matters.
    bool warm_start = false;
    double warm_start_tolerance = 0.05;
  };

  BigMNlpPolicy();
  explicit BigMNlpPolicy(Options options);

  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  /// Fresh copy with the same options (empty warm cache and counters).
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<BigMNlpPolicy>(options_);
  }
  /// Cumulative counters since construction; nlp_iterations carries the
  /// inner-minimizer work, warm_start_* the cache behaviour (all zero
  /// unless Options::warm_start is on).
  PolicyStats stats() const override { return totals_; }

  /// Total inner NLP iterations spent by the last plan_slot (Fig. 11).
  int inner_iterations() const { return inner_iterations_; }

 private:
  /// Previous slot's solution vector + the inputs it was solved under.
  struct WarmCache {
    bool valid = false;
    std::vector<double> x;
    std::vector<std::vector<double>> arrival_rate;
    std::vector<double> price;
  };

  bool warm_applicable(const SlotInput& input, std::size_t dimension) const;

  std::string name_ = "BigM-NLP";
  Options options_;
  int inner_iterations_ = 0;
  WarmCache cache_;
  PolicyStats totals_;
};

}  // namespace palb
