#pragma once

#include "core/policy.hpp"
#include "solver/nlp.hpp"

namespace palb {

/// Paper-faithful solver path (§IV-2/3): instead of conditioning on TUF
/// bands, keep the per-(class, DC) utility U_{k,l} as a *decision
/// variable*, tie it to the delay through the big-M constraint system
/// (Eqs. 11-13 / 17) materialized by StepTufBigM, and hand the resulting
/// non-convex NLP to a general solver — the paper used CPLEX/AIMMS, this
/// tree uses the in-house augmented-Lagrangian solver with multi-start.
///
/// Decision vector: routing x_{k,s,l}, per-server shares phi_{k,l}
/// (identical across a DC's homogeneous servers, which all stay powered
/// on while the DC carries load), utilities U_{k,l}. Delay enters as
/// R = 1/(phi C mu - X/M); constraints involving R are load-scaled so an
/// idle (class, DC) pair imposes nothing.
///
/// This path is intentionally slower and only near-optimal — it exists to
/// reproduce the paper's methodology and the Fig. 11 computation-time
/// behaviour; OptimizedPolicy is the production path.
class BigMNlpPolicy : public Policy {
 public:
  struct Options {
    double big_m = 1e5;
    double delta = 1e-6;
    int multistarts = 6;
    std::uint64_t seed = 0x5EEDull;
    AugLagSolver::Options nlp;
  };

  BigMNlpPolicy();
  explicit BigMNlpPolicy(Options options);

  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;

  /// Total inner NLP iterations spent by the last plan_slot (Fig. 11).
  int inner_iterations() const { return inner_iterations_; }

 private:
  std::string name_ = "BigM-NLP";
  Options options_;
  int inner_iterations_ = 0;
};

}  // namespace palb
