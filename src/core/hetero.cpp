#include "core/hetero.hpp"

#include "util/error.hpp"

namespace palb::hetero {

Scenario split_datacenter(const Scenario& scenario, std::size_t dc_index,
                          const std::vector<ServerGroup>& groups) {
  scenario.validate();
  PALB_REQUIRE(dc_index < scenario.topology.num_datacenters(),
               "data center index out of range");
  PALB_REQUIRE(!groups.empty(), "need at least one server group");
  for (const auto& g : groups) {
    PALB_REQUIRE(g.num_servers >= 0, "group server count must be >= 0");
    PALB_REQUIRE(g.capacity > 0.0, "group capacity must be > 0");
    PALB_REQUIRE(g.energy_factor > 0.0, "energy factor must be > 0");
  }

  Scenario out = scenario;
  const DataCenter original = scenario.topology.datacenters[dc_index];

  // Build the replacement pools.
  std::vector<DataCenter> pools;
  pools.reserve(groups.size());
  for (std::size_t g = 0; g < groups.size(); ++g) {
    DataCenter pool = original;
    pool.name = original.name + "/g" + std::to_string(g + 1);
    pool.num_servers = groups[g].num_servers;
    pool.server_capacity = original.server_capacity * groups[g].capacity;
    for (double& e : pool.energy_per_request_kwh) {
      e *= groups[g].energy_factor;
    }
    if (groups[g].idle_power_kw >= 0.0) {
      pool.idle_power_kw = groups[g].idle_power_kw;
    }
    pools.push_back(std::move(pool));
  }

  // Splice pools into the data-center list.
  auto& dcs = out.topology.datacenters;
  dcs.erase(dcs.begin() + static_cast<std::ptrdiff_t>(dc_index));
  dcs.insert(dcs.begin() + static_cast<std::ptrdiff_t>(dc_index),
             pools.begin(), pools.end());

  // Duplicate the location-bound data: distances per front-end and the
  // price trace.
  for (auto& row : out.topology.distance_miles) {
    const double distance = row[dc_index];
    row.erase(row.begin() + static_cast<std::ptrdiff_t>(dc_index));
    row.insert(row.begin() + static_cast<std::ptrdiff_t>(dc_index),
               groups.size(), distance);
  }
  const PriceTrace price = out.prices[dc_index];
  out.prices.erase(out.prices.begin() +
                   static_cast<std::ptrdiff_t>(dc_index));
  for (std::size_t g = 0; g < groups.size(); ++g) {
    out.prices.insert(
        out.prices.begin() + static_cast<std::ptrdiff_t>(dc_index + g),
        price);
  }

  out.validate();
  return out;
}

}  // namespace palb::hetero
