#pragma once

#include <cstdint>
#include <vector>

#include "core/policy.hpp"

namespace palb {

/// The paper's "Optimized" approach: jointly decide request dispatching
/// (lambda_{k,s,l}), CPU shares (phi_{k,l}) and powered-on server counts
/// to maximize net profit (Eq. 4-8).
///
/// Solution method (DESIGN.md §3): for step TUFs the only delay question
/// per (class, data center) is *which utility band* the mean delay lands
/// in. Conditioning on a band profile {q_{k,l}} (including "not served")
/// turns the whole problem into a linear program in the routing rates —
/// the minimal share for band q is phi = (lambda_per_server + 1/D_q)/(C mu)
/// so the per-server share budget becomes a linear capacity row. The
/// policy searches profile space (exhaustively below a threshold,
/// first-improvement local search above it), solving one LP per profile;
/// the sweep fans across a thread pool.
///
/// For one-level TUFs the profile space is {off, on}^(K*L) and each LP is
/// exactly the paper's linearized formulation (§IV-1).
class OptimizedPolicy : public Policy {
 public:
  /// What the TUF sub-deadlines constrain. The paper uses the *mean*
  /// sojourn (Eq. 1). kTailPercentile instead requires
  /// P(sojourn <= D_q) >= tail_percentile, which for an M/M/1 queue
  /// (P(T > t) = e^{-(mu_eff - lambda) t}) is exactly a mean-delay
  /// constraint with the deadline shrunk by ln(1/(1-p)) — so the same
  /// LP machinery plans hard latency SLOs at a capacity premium.
  enum class DelayMetric { kMeanDelay, kTailPercentile };

  /// Whether profile LPs route through the block-decomposed
  /// (Dantzig-Wolfe) driver in src/solver/decomposed.hpp. The driver
  /// detects block-angular structure at runtime and falls back to the
  /// monolithic simplex when it is absent, and its crossover +
  /// deterministic refactorization make decomposed and monolithic
  /// solves return bitwise-identical points — so this switch changes
  /// solve *time* on large topologies, never plans.
  enum class DecomposedSolve { kOff, kAuto, kOn };

  struct Options {
    /// Exhaustive enumeration is used while the profile count stays below
    /// this bound; larger spaces fall back to local search.
    std::uint64_t max_enumerated_profiles = 1u << 20;
    DelayMetric delay_metric = DelayMetric::kMeanDelay;
    /// Percentile for kTailPercentile, in (0, 1).
    double tail_percentile = 0.95;
    /// Local-search restarts (profile space too big to enumerate).
    int local_search_restarts = 4;
    /// Give unused CPU share back to loaded classes after solving — the
    /// extra headroom shortens delays and can only raise utility.
    bool distribute_spare_share = true;
    /// Parallelize the enumeration sweep across hardware threads.
    bool parallel = true;
    /// Relative safety margin inside each sub-deadline: the plan targets
    /// delays of at most D*(1-margin) so that (a) floating-point
    /// round-trips and (b) the sampling noise of *empirical* mean delays
    /// in a stochastic replay keep the stream strictly inside its
    /// intended utility band. 2% costs almost no capacity (the per-server
    /// rate loss is ~margin/D req/s) and makes plans robust end-to-end.
    double deadline_margin = 0.02;
    /// Seed each slot from the previous slot's winning band profile when
    /// every arrival rate and price moved less than warm_start_tolerance
    /// (relative), and use the incumbent's objective to skip profiles
    /// whose optimistic LP value bound falls strictly below it. Plans
    /// are unchanged: a skipped profile can neither win nor tie, and
    /// exact-objective ties always resolve to the lowest profile index.
    /// Only the exhaustive-enumeration path consults the cache.
    bool warm_start = true;
    /// Maximum relative per-entry drift of arrival rates and prices for
    /// the previous slot's solution to count as a warm start.
    double warm_start_tolerance = 0.05;
    /// Reuse simplex bases across the profile search (basis-level warm
    /// starts, independent of the profile-level `warm_start` cache). The
    /// enumerated sweep solves one deterministic *anchor* profile (every
    /// cell at its last TUF band — the profile whose LP contains every
    /// other profile's columns) cold, then warm-starts every other
    /// profile from the anchor's optimal basis; each LP's pivot path
    /// thus depends only on (topology, input, profile), never on worker
    /// partition or cache state, so plans stay byte-identical across
    /// worker counts. The local-search path chains each accepted
    /// profile's basis into its neighbors instead (serial, equally
    /// deterministic). The solver discards any basis that lands
    /// out-of-bounds, so this can change pivot counts but never plans.
    bool warm_start_bases = true;
    /// Per-LP simplex pivot budget (0 = the solver's default). A profile
    /// whose LP exhausts the budget is treated as infeasible and skipped
    /// — the all-off zero plan is always available, so plan_slot still
    /// returns. degraded() uses a small budget as a per-slot deadline;
    /// fault schedules can also force-exhaust it to model solver
    /// failures.
    std::uint64_t lp_max_iterations = 0;
    /// kAuto (the default) decomposes only the LPs big enough for the
    /// column-generation overhead to pay off (>= decomposed_min_variables
    /// variables) — small topologies keep the plain simplex path with
    /// zero overhead. kOn forces the decomposed driver everywhere (it
    /// still falls back per-LP when no block structure exists); kOff
    /// disables it. degraded() forces kOff: rung 2 wants the smallest
    /// constant factor, not asymptotic scaling.
    DecomposedSolve decomposed_solve = DecomposedSolve::kAuto;
    /// kAuto size threshold, in LP variables (active (k, s, l) routing
    /// arcs). Below this the monolithic simplex wins outright.
    int decomposed_min_variables = 192;
    /// Worker budget for the decomposed driver's per-round subproblem
    /// fan-out. The default 1 solves inline — the right choice while the
    /// profile sweep itself fans across the pool; raise it only when
    /// profiles are solved one at a time (huge LPs, serial sweeps).
    /// Plans are identical for every value.
    std::size_t decomposed_workers = 1;
    /// Cooperative cancellation token (not owned; may be nullptr),
    /// normally installed via Policy::set_cancel(). Forwarded into every
    /// profile LP (SimplexSolver::Options::cancel) and polled between
    /// profiles; once it reads true the sweep stops solving and
    /// plan_slot throws SolveCancelled. Living in Options means clone()
    /// propagates it to parallel workers; degraded() clears it.
    const std::atomic<bool>* cancel = nullptr;
  };

  OptimizedPolicy() = default;
  explicit OptimizedPolicy(Options options) : options_(options) {}

  const std::string& name() const override { return name_; }
  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override;
  /// Fresh copy with the same options; the copy's warm-start cache and
  /// counters start empty (each parallel worker grows its own chain).
  std::unique_ptr<Policy> clone() const override {
    return std::make_unique<OptimizedPolicy>(options_);
  }
  /// Rung-2 variant: serial, no warm-start state, a small profile space
  /// and a tight per-LP pivot budget, so one slot's re-solve is cheap
  /// and bounded. Plans remain deterministic in (topology, input) alone
  /// — the ResilientController builds a fresh instance per failed slot.
  std::unique_ptr<Policy> degraded() const override;
  /// Installs the watchdog's cancellation token (see Options::cancel).
  void set_cancel(const std::atomic<bool>* cancel) override {
    options_.cancel = cancel;
  }
  /// Cumulative counters since construction, including warm-start cache
  /// hits/misses and incumbent-bound prunes.
  PolicyStats stats() const override { return totals_; }

  /// Profiles examined (LP-solved or found structurally infeasible) by
  /// the most recent plan_slot (observability for the computation-time
  /// study, Fig. 11). Excludes profiles_pruned().
  std::uint64_t profiles_examined() const { return profiles_examined_; }
  /// Profiles the most recent plan_slot discarded by the warm-start
  /// incumbent bound without an LP solve.
  std::uint64_t profiles_pruned() const { return profiles_pruned_; }
  /// LP simplex iterations accumulated by the most recent plan_slot.
  std::uint64_t lp_iterations() const { return lp_iterations_; }
  /// LP solves of the most recent plan_slot that needed no phase-1 work.
  std::uint64_t phase1_skips() const { return phase1_skips_; }
  /// LP solves of the most recent plan_slot that accepted a warm basis.
  std::uint64_t basis_warm_hits() const { return basis_warm_hits_; }
  /// Dense column updates the simplex's support-walking pivot kernel
  /// skipped across the most recent plan_slot's LP solves.
  std::uint64_t sparse_price_skips() const { return sparse_price_skips_; }
  /// Dantzig-Wolfe master re-solves across the most recent plan_slot
  /// (zero when no LP took the decomposed path).
  std::uint64_t master_iterations() const { return master_iterations_; }
  /// Dantzig-Wolfe block subproblem solves across the most recent
  /// plan_slot.
  std::uint64_t subproblem_solves() const { return subproblem_solves_; }
  /// Marginal dollar value, per slot, of adding one server to each data
  /// center — the dual of the winning profile's capacity row scaled by a
  /// server's net capacity contribution. Zero where capacity is slack.
  /// Sized [num_datacenters] after a plan_slot; what-if capacity planning
  /// reads this instead of re-solving (see bench/ext_shadow_prices).
  const std::vector<double>& server_shadow_prices() const {
    return server_shadow_prices_;
  }

 private:
  /// Previous enumerated slot's inputs + winning profile index. The
  /// signature (per-cell radices, input shapes) guards against reuse
  /// across topologies; correctness never depends on a hit because the
  /// incumbent is re-solved under the current inputs before it prunes.
  struct WarmCache {
    bool valid = false;
    std::uint64_t winning_index = 0;
    std::vector<std::uint64_t> radices;  ///< per (k,l) cell, topology sig
    std::vector<std::vector<double>> arrival_rate;
    std::vector<double> price;
  };

  bool warm_applicable(const Topology& topology, const SlotInput& input) const;

  std::string name_ = "Optimized";
  Options options_;
  std::uint64_t profiles_examined_ = 0;
  std::uint64_t profiles_pruned_ = 0;
  std::uint64_t lp_iterations_ = 0;
  std::uint64_t phase1_skips_ = 0;
  std::uint64_t basis_warm_hits_ = 0;
  std::uint64_t sparse_price_skips_ = 0;
  std::uint64_t master_iterations_ = 0;
  std::uint64_t subproblem_solves_ = 0;
  std::vector<double> server_shadow_prices_;
  WarmCache cache_;
  PolicyStats totals_;
};

}  // namespace palb
