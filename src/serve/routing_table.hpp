#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "cloud/model.hpp"
#include "cloud/plan.hpp"

namespace palb::serve {

/// Outcome of routing one request on the fast path.
enum class RouteStatus {
  kRouted,   ///< `dc` holds the destination data center
  kNoRoute,  ///< the applied plan dispatches nothing for this stream
             ///< (shed front-end, shed-all plan, or no plan published)
  kShed,     ///< dropped by admission control before routing: the
             ///< offered load exceeds what the applied plan admits for
             ///< this stream (serve/admission.hpp, docs/OVERLOAD.md)
};

/// One routing decision, stamped with the version of the published plan
/// it was derived from — every routed request is attributable to
/// exactly one PlanHandle::publish() (version 0 = no plan yet).
struct Route {
  RouteStatus status = RouteStatus::kNoRoute;
  std::size_t dc = 0;  ///< meaningful only when status == kRouted
  std::uint64_t plan_version = 0;

  bool routed() const { return status == RouteStatus::kRouted; }
};

/// Immutable per-front-end routing tables compiled from one
/// DispatchPlan: for every (class k, front-end s) stream, a prefix-sum
/// CDF over the data centers that receive a positive share of that
/// stream's dispatched rate. route() hashes the request id into [0, 1)
/// and binary-searches the CDF — a deterministic, alias-free pure
/// function of (table, request id), which is what makes routing
/// sequences byte-identical across driver-thread counts
/// (tests/test_dispatch_determinism.cpp).
///
/// Zero-rate (class, front-end) streams — a shed front-end, or the
/// whole table under a rung-5 shed-all plan — compile to an explicit
/// empty entry and route() reports kNoRoute; there is no fallback
/// destination and no UB. Data centers with zero rate for a stream
/// (including links the ResilientController projected off after a cut,
/// and fully-outaged DCs whose plans carry no flow) are never entered
/// in the CDF, so no hash value can select them.
class RoutingTable {
 public:
  RoutingTable() = default;

  /// Compiles `plan` (shaped for `topology`) published as `plan_version`.
  /// Throws InvalidArgument on a shape mismatch or a negative rate.
  static RoutingTable compile(const Topology& topology,
                              const DispatchPlan& plan,
                              std::uint64_t plan_version);

  /// Routes one class-`klass` request arriving at front-end `frontend`.
  /// Pure and lock-free: any number of threads may call it on a shared
  /// immutable table. Indices are bounds-checked in debug builds only.
  Route route(std::size_t klass, std::size_t frontend,
              std::uint64_t request_id) const;

  std::uint64_t plan_version() const { return plan_version_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_frontends() const { return num_frontends_; }

  /// True when the (klass, frontend) stream has at least one destination.
  bool has_route(std::size_t klass, std::size_t frontend) const;

  /// The compiled (data center, cumulative share) pairs of one stream,
  /// in DC order — the test surface for CDF exactness. Empty when the
  /// stream has no route. The last cumulative share is exactly 1.0.
  std::vector<std::pair<std::size_t, double>> cdf(
      std::size_t klass, std::size_t frontend) const;

 private:
  struct Entry {
    std::uint32_t offset = 0;
    std::uint32_t count = 0;
  };

  const Entry& entry(std::size_t klass, std::size_t frontend) const {
    return entries_[klass * num_frontends_ + frontend];
  }

  std::size_t num_classes_ = 0;
  std::size_t num_frontends_ = 0;
  std::uint64_t plan_version_ = 0;
  /// entries_[k * S + s] indexes a run of `count` destinations in the
  /// flat arrays below (struct-of-arrays keeps the binary search inside
  /// one cache line for paper-scale DC counts).
  std::vector<Entry> entries_;
  std::vector<double> cum_share_;   ///< cumulative shares, run ends at 1.0
  std::vector<std::uint32_t> dc_;   ///< destination DC per CDF step
};

}  // namespace palb::serve
