#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cloud/model.hpp"
#include "serve/admission.hpp"
#include "serve/dispatcher.hpp"

namespace palb::serve {

/// Deterministic synthetic request stream, the gRPC-QPS-style driver's
/// workload half: request index -> (class, front-end, request id), a
/// pure function of (mix, seed, index). The (class, front-end) pair is
/// drawn from the CDF of the slot's offered arrival rates (so the
/// synthetic mix matches what the optimizer planned for) and the id is
/// an independent 64-bit draw. Because at() carries no state, any
/// partition of the index range over driver threads replays the exact
/// same stream — the root of the byte-identical-across-thread-counts
/// guarantee (tests/test_dispatch_determinism.cpp).
class RequestStream {
 public:
  struct Request {
    std::size_t klass = 0;
    std::size_t frontend = 0;
    std::uint64_t id = 0;
  };

  /// Compiles the (class, front-end) mix from `mix`'s arrival rates.
  /// Throws InvalidArgument when every offered rate is zero.
  static RequestStream compile(const Topology& topology,
                               const SlotInput& mix, std::uint64_t seed);

  Request at(std::uint64_t index) const;

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_ = 0;
  std::vector<double> cum_;  ///< CDF over positive-rate streams, ends at 1.0
  std::vector<std::uint32_t> klass_;
  std::vector<std::uint32_t> frontend_;
};

/// Closed-loop driver configuration. Two modes:
///  * timed (total_requests == 0): every thread routes back-to-back
///    until `seconds` elapse — the throughput/latency benchmark.
///  * fixed (total_requests > 0): exactly that many stream indices are
///    routed, contiguous blocks per thread, optionally recording each
///    decision — the determinism harness. Byte-identical recordings
///    across thread counts require a quiescent plan (no concurrent
///    publishes), which is the caller's to arrange.
struct QpsOptions {
  std::size_t threads = 1;  ///< 0 = one per hardware thread
  double seconds = 1.0;
  std::uint64_t total_requests = 0;
  /// Poll Dispatcher::try_refresh() every this many requests per thread
  /// (the plan-swap pickup cadence of the batch fast path).
  std::uint64_t refresh_every = 1024;
  /// Sample the per-route latency on every Nth request (timed mode).
  /// The gate is a per-thread countdown, not a modulo, and the steady-
  /// clock read overhead (calibrated once per run) is subtracted from
  /// every sample — so sampling distorts neither the unsampled fast
  /// path nor the sampled latencies themselves (docs/SERVING.md).
  std::uint64_t latency_sample_every = 16;
  bool record_decisions = false;  ///< fixed mode only
  /// Optional admission gate (not owned; must outlive the run). When
  /// set, every request is admission-controlled *before* routing:
  /// rejected requests count as shed and never reach the dispatcher
  /// (docs/OVERLOAD.md). Refreshed at the same batch cadence as the
  /// routing tables.
  const AdmissionController* admission = nullptr;
};

/// Merged result of one driver run.
struct QpsReport {
  std::size_t threads = 0;
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t no_route = 0;
  /// Requests dropped by the admission gate before routing (always 0
  /// when QpsOptions::admission is unset).
  std::uint64_t shed = 0;
  double elapsed_seconds = 0.0;
  /// Aggregate routing decisions per second across all driver threads.
  double qps() const {
    return elapsed_seconds > 0.0
               ? static_cast<double>(requests) / elapsed_seconds
               : 0.0;
  }
  /// Routing-decision latency percentiles in nanoseconds (0 when no
  /// samples were taken — fixed mode does not time individual routes).
  double p50_ns = 0.0, p90_ns = 0.0, p99_ns = 0.0, p999_ns = 0.0;
  double max_ns = 0.0;
  std::uint64_t latency_samples = 0;
  /// Calibrated steady-clock read overhead subtracted from every
  /// latency sample (the min of a back-to-back Clock::now() burst).
  double clock_overhead_ns = 0.0;
  /// Plan versions observed on routed requests (both 0 when none routed).
  std::uint64_t min_plan_version = 0;
  std::uint64_t max_plan_version = 0;
  /// Dispatcher counter deltas over this run: table rebuilds, benign
  /// refresh skips, and the plan-swap stall count (contractually 0).
  Dispatcher::Stats dispatcher;
  /// Fixed mode with record_decisions: one word per stream index —
  /// 0 for no-route, (plan_version << 16) | (dc + 1) for a routed
  /// request, and (plan_version << 16) | 0xFFFF for one the admission
  /// gate shed (version = the gate's compiled plan version; 0xFFFF
  /// cannot collide with dc + 1 at paper-scale DC counts). Two runs
  /// decided identically iff these vectors compare equal.
  std::vector<std::uint64_t> decisions;
};

/// Runs the closed-loop driver against `dispatcher`.
QpsReport run_qps(const Dispatcher& dispatcher, const RequestStream& stream,
                  const QpsOptions& options);

/// Spins (yielding, never sleeping) until the dispatcher's compiled
/// tables reach `min_version` or `timeout_seconds` pass; returns the
/// table version actually reached. The serving handshake: start driver
/// threads only once the slow path has published its first plan.
std::uint64_t wait_for_version(const Dispatcher& dispatcher,
                               std::uint64_t min_version,
                               double timeout_seconds);

}  // namespace palb::serve
