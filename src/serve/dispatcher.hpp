#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "cloud/model.hpp"
#include "core/plan_handle.hpp"
#include "serve/routing_table.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb::serve {

/// The online fast path: routes individual requests against the plan
/// the slow path (AsyncPlanner / ResilientController) last published
/// into a PlanHandle, via per-front-end RoutingTables that hot-swap on
/// version change.
///
/// Reader side — two surfaces, both safe from any number of threads:
///
///  * route() is the coherent one-shot: it detects a stale table
///    (including the rung-5 shed-all transition, where the new plan
///    routes *nothing* and the old table must not keep serving its
///    destinations), rebuilds opportunistically, and routes. A reader
///    never blocks on a swap: if another thread is already compiling,
///    route() serves from the incumbent table and moves on — that is
///    the zero-stall contract tests/test_plan_swap_coherence.cpp
///    hammers, and Stats::stalled_routes counts any violation (always
///    0 by construction).
///
///  * tables() + refresh() is the batch hot path the QPS driver uses:
///    hold the immutable table snapshot across a batch of requests
///    (route() on a RoutingTable is pure arithmetic, no locks), and
///    poll refresh() between batches. The snapshot stays valid while
///    held — RCU via shared_ptr, exactly PlanHandle's grace period.
///
/// Writer side: refresh() serializes compiles on compile_mutex_, swaps
/// the table pointer under table_mutex_ (the same TSan-visible
/// guarded-shared_ptr idiom as PlanHandle), and stamps every table
/// with the plan version it was compiled from — so each routed request
/// is attributable to exactly one publish.
class Dispatcher {
 public:
  struct Stats {
    std::uint64_t rebuilds = 0;       ///< tables compiled and swapped in
    std::uint64_t refresh_skips = 0;  ///< try_refresh found a peer compiling
    std::uint64_t stalled_routes = 0; ///< routes that blocked on a swap:
                                      ///< the contract says never
  };

  /// `plans` is not owned and must outlive the dispatcher.
  Dispatcher(Topology topology, const PlanHandle& plans);

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Routes one class-`klass` request arriving at front-end `frontend`.
  /// Coherent: serves from a table no older than the newest plan that
  /// was published before this call began, except while a peer holds
  /// the compile lock (then the incumbent table is used — no waiting).
  Route route(std::size_t klass, std::size_t frontend,
              std::uint64_t request_id) const
      PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// Current immutable table snapshot (null before the first plan is
  /// published and compiled). Wait-free apart from the brief pointer
  /// copy; hold it across a request batch and poll refresh() between
  /// batches.
  std::shared_ptr<const RoutingTable> tables() const
      PALB_EXCLUDES(table_mutex_);

  /// Recompiles and swaps the tables iff the plan handle has advanced
  /// past the compiled version. Serializes with concurrent refreshers;
  /// returns true when a new table was swapped in.
  bool refresh() const PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// refresh() that declines to wait: if another thread is already
  /// compiling, returns false immediately (counted in
  /// Stats::refresh_skips) — the caller keeps routing on the incumbent
  /// table instead of stalling.
  bool try_refresh() const PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// Plan version of the current tables (0 = none compiled yet).
  std::uint64_t table_version() const PALB_EXCLUDES(table_mutex_);

  /// Version of the newest *published* plan — table_version() lags it
  /// exactly while a swap is pending.
  std::uint64_t plan_version() const { return plans_.version(); }

  const Topology& topology() const { return topology_; }

  Stats stats() const;

 private:
  bool refresh_locked() const PALB_REQUIRES(compile_mutex_)
      PALB_EXCLUDES(table_mutex_);

  Topology topology_;
  const PlanHandle& plans_;
  /// Fixed order: compile_mutex_ before table_mutex_. The compile lock
  /// is held across a whole table build (one writer at a time, readers
  /// unaffected); the table lock guards only the pointer copy/swap.
  mutable Mutex compile_mutex_;
  mutable Mutex table_mutex_ PALB_ACQUIRED_AFTER(compile_mutex_);
  mutable std::shared_ptr<const RoutingTable> tables_
      PALB_GUARDED_BY(table_mutex_);
  mutable std::atomic<std::uint64_t> rebuilds_{0};
  mutable std::atomic<std::uint64_t> refresh_skips_{0};
  mutable std::atomic<std::uint64_t> stalled_routes_{0};
};

}  // namespace palb::serve
