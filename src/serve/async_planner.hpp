#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>

#include "core/controller.hpp"
#include "core/plan_handle.hpp"
#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "util/thread_pool.hpp"

namespace palb::serve {

/// The serving slow path: runs ResilientController solves asynchronously
/// on a ThreadPool and hot-swaps every applied plan into a PlanHandle
/// the moment the ladder accepts it — in slot order, post-audit — so a
/// Dispatcher's routing tables follow the run while it is in flight.
///
/// One pool thread executes solve jobs in submission order (a Policy is
/// not safe for concurrent plan_slot calls); each job fans its candidate
/// solves across `Options::solve_workers` internally, exactly as a
/// foreground ResilientController run would. The fast path never waits
/// on this class: readers route against whatever plan version has
/// landed, and `route()` returns an explicit no-route until the first
/// publish.
class AsyncPlanner {
 public:
  /// Solve-lifecycle watchdog (docs/OVERLOAD.md): a wall-clock budget
  /// per solve attempt, enforced by cooperative cancellation. When the
  /// budget expires, the attempt's cancel token flips, in-flight full
  /// solves abort at pivot-batch granularity, and the ladder finishes
  /// the run from its cheaper rungs — the dispatcher keeps serving the
  /// whole time. The planner then retries after a seed-jittered
  /// exponential backoff, each retry capped one effort rung lower
  /// (full-solve -> reduced-resolve -> previous-plan), so a retry that
  /// fits the budget re-publishes fresher plans.
  ///
  /// The watchdog is *real-time* hardening and deliberately outside the
  /// determinism perimeter: byte-identical chaos runs use planner-stall
  /// faults (fault.hpp), which model the same event as a pure function
  /// of (scenario, schedule, slot).
  struct Watchdog {
    /// Wall-clock budget per solve attempt in seconds; 0 disables the
    /// watchdog entirely (no thread, no token — today's behavior).
    double solve_deadline_seconds = 0.0;
    /// Retries after a deadline expiration (on top of the first
    /// attempt); each one descends the effort ladder by one rung.
    std::size_t max_retries = 2;
    /// Backoff before retry r is base * 2^r, scaled by a deterministic
    /// jitter factor in [0.5, 1.5) drawn from `jitter_seed`.
    double backoff_base_seconds = 0.02;
    std::uint64_t jitter_seed = 0;
  };

  /// Cumulative watchdog telemetry across all solve_async jobs.
  struct WatchdogStats {
    /// Attempts whose deadline expired (the cancel token flipped).
    std::uint64_t deadline_expirations = 0;
    /// Retry attempts launched after an expiration.
    std::uint64_t retries = 0;
    /// Wall-clock nanoseconds between a job's *first* deadline
    /// expiration and its final attempt returning — the window during
    /// which the live handle served plans degraded by cancellation
    /// while retries were still in flight.
    std::uint64_t stale_plan_ns = 0;
  };

  struct Options {
    /// Candidate-solve fan-out inside each run (ResilientController
    /// Options::workers semantics; 1 = serial).
    std::size_t solve_workers = 1;
    /// Checker / heuristic configuration forwarded to every run.
    /// `live` is overwritten with this planner's PlanHandle, and
    /// `cancel` / `max_effort` with each watchdog attempt's token and
    /// rung cap (set Watchdog::solve_deadline_seconds = 0 to keep them
    /// yours).
    ResilientController::Options resilient;
    Watchdog watchdog;
  };

  /// `live` is not owned and must outlive the planner.
  AsyncPlanner(Scenario scenario, FaultSchedule schedule, PlanHandle& live);
  AsyncPlanner(Scenario scenario, FaultSchedule schedule, PlanHandle& live,
               Options options);
  /// Joins the solve thread; queued runs complete first (ThreadPool
  /// shutdown contract).
  ~AsyncPlanner();

  AsyncPlanner(const AsyncPlanner&) = delete;
  AsyncPlanner& operator=(const AsyncPlanner&) = delete;

  const ResilientController& controller() const { return controller_; }
  const PlanHandle& live() const { return live_; }

  /// Enqueues an asynchronous run of [first_slot, first_slot + num_slots).
  /// `policy` must outlive the returned future's completion and must not
  /// be used by the caller until then. The future carries the RunResult
  /// (or rethrows a configuration error).
  std::future<RunResult> solve_async(Policy& policy, std::size_t num_slots,
                                     std::size_t first_slot = 0);

  WatchdogStats watchdog_stats() const;

 private:
  /// One job's body on the solve thread: the watchdog-guarded retry
  /// loop (or a plain run when the watchdog is disabled).
  RunResult run_guarded(Policy& policy, std::size_t num_slots,
                        std::size_t first_slot);

  ResilientController controller_;
  PlanHandle& live_;
  Options options_;
  std::atomic<std::uint64_t> deadline_expirations_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> stale_plan_ns_{0};
  ThreadPool pool_;
};

}  // namespace palb::serve
