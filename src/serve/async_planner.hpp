#pragma once

#include <cstddef>
#include <future>

#include "core/controller.hpp"
#include "core/plan_handle.hpp"
#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "util/thread_pool.hpp"

namespace palb::serve {

/// The serving slow path: runs ResilientController solves asynchronously
/// on a ThreadPool and hot-swaps every applied plan into a PlanHandle
/// the moment the ladder accepts it — in slot order, post-audit — so a
/// Dispatcher's routing tables follow the run while it is in flight.
///
/// One pool thread executes solve jobs in submission order (a Policy is
/// not safe for concurrent plan_slot calls); each job fans its candidate
/// solves across `Options::solve_workers` internally, exactly as a
/// foreground ResilientController run would. The fast path never waits
/// on this class: readers route against whatever plan version has
/// landed, and `route()` returns an explicit no-route until the first
/// publish.
class AsyncPlanner {
 public:
  struct Options {
    /// Candidate-solve fan-out inside each run (ResilientController
    /// Options::workers semantics; 1 = serial).
    std::size_t solve_workers = 1;
    /// Checker / heuristic configuration forwarded to every run.
    /// `live` is overwritten with this planner's PlanHandle.
    ResilientController::Options resilient;
  };

  /// `live` is not owned and must outlive the planner.
  AsyncPlanner(Scenario scenario, FaultSchedule schedule, PlanHandle& live);
  AsyncPlanner(Scenario scenario, FaultSchedule schedule, PlanHandle& live,
               Options options);
  /// Joins the solve thread; queued runs complete first (ThreadPool
  /// shutdown contract).
  ~AsyncPlanner();

  AsyncPlanner(const AsyncPlanner&) = delete;
  AsyncPlanner& operator=(const AsyncPlanner&) = delete;

  const ResilientController& controller() const { return controller_; }
  const PlanHandle& live() const { return live_; }

  /// Enqueues an asynchronous run of [first_slot, first_slot + num_slots).
  /// `policy` must outlive the returned future's completion and must not
  /// be used by the caller until then. The future carries the RunResult
  /// (or rethrows a configuration error).
  std::future<RunResult> solve_async(Policy& policy, std::size_t num_slots,
                                     std::size_t first_slot = 0);

 private:
  ResilientController controller_;
  PlanHandle& live_;
  Options options_;
  ThreadPool pool_;
};

}  // namespace palb::serve
