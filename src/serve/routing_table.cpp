#include "serve/routing_table.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb::serve {

namespace {

/// request id -> uniform double in [0, 1). SplitMix64 is a bijective
/// scramble, so consecutive ids land uniformly and two tables built from
/// the same plan route the same id identically — no per-call RNG state.
double unit_interval(std::uint64_t request_id) {
  SplitMix64 mix(request_id);
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

}  // namespace

RoutingTable RoutingTable::compile(const Topology& topology,
                                   const DispatchPlan& plan,
                                   std::uint64_t plan_version) {
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  PALB_REQUIRE(plan.rate.size() == K,
               "plan/topology class-count mismatch in RoutingTable");
  PALB_REQUIRE(L <= std::numeric_limits<std::uint32_t>::max(),
               "data-center count overflows the routing-table index");

  RoutingTable table;
  table.num_classes_ = K;
  table.num_frontends_ = S;
  table.plan_version_ = plan_version;
  table.entries_.resize(K * S);
  table.cum_share_.reserve(K * S);
  table.dc_.reserve(K * S);

  for (std::size_t k = 0; k < K; ++k) {
    PALB_REQUIRE(plan.rate[k].size() == S,
                 "plan/topology front-end-count mismatch in RoutingTable");
    for (std::size_t s = 0; s < S; ++s) {
      const std::vector<double>& row = plan.rate[k][s];
      PALB_REQUIRE(row.size() == L,
                   "plan/topology DC-count mismatch in RoutingTable");
      double total = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        PALB_REQUIRE(row[l] >= 0.0,
                     "negative dispatch rate in RoutingTable");
        total += row[l];
      }
      Entry& entry = table.entries_[k * S + s];
      entry.offset = static_cast<std::uint32_t>(table.cum_share_.size());
      if (total <= 0.0) {
        entry.count = 0;  // explicit no-route: shed stream / shed-all plan
        continue;
      }
      double cumulative = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        if (row[l] <= 0.0) continue;  // zero-share DCs never enter the CDF
        cumulative += row[l] / total;
        table.cum_share_.push_back(cumulative);
        table.dc_.push_back(static_cast<std::uint32_t>(l));
      }
      // The run must end at exactly 1.0 so every u in [0, 1) selects a
      // destination; the prefix sums above can land at 1 - epsilon.
      table.cum_share_.back() = 1.0;
      entry.count = static_cast<std::uint32_t>(table.cum_share_.size()) -
                    entry.offset;
    }
  }
  return table;
}

Route RoutingTable::route(std::size_t klass, std::size_t frontend,
                          std::uint64_t request_id) const {
  PALB_DCHECK(klass < num_classes_ && frontend < num_frontends_,
              "route() indices outside the compiled table");
  const Entry& e = entry(klass, frontend);
  if (e.count == 0) return Route{RouteStatus::kNoRoute, 0, plan_version_};
  const double u = unit_interval(request_id);
  const double* first = cum_share_.data() + e.offset;
  const double* last = first + e.count;
  // First CDF step strictly above u; u < 1.0 == *(last - 1), so the
  // search cannot run off the end.
  const double* hit = std::upper_bound(first, last, u);
  if (hit == last) --hit;  // u == nextafter(1.0, 0) vs FP-rounded steps
  const std::size_t dc = dc_[e.offset + static_cast<std::size_t>(hit - first)];
  return Route{RouteStatus::kRouted, dc, plan_version_};
}

bool RoutingTable::has_route(std::size_t klass, std::size_t frontend) const {
  PALB_REQUIRE(klass < num_classes_ && frontend < num_frontends_,
               "has_route() indices outside the compiled table");
  return entry(klass, frontend).count > 0;
}

std::vector<std::pair<std::size_t, double>> RoutingTable::cdf(
    std::size_t klass, std::size_t frontend) const {
  PALB_REQUIRE(klass < num_classes_ && frontend < num_frontends_,
               "cdf() indices outside the compiled table");
  const Entry& e = entry(klass, frontend);
  std::vector<std::pair<std::size_t, double>> out;
  out.reserve(e.count);
  for (std::uint32_t i = 0; i < e.count; ++i) {
    out.emplace_back(dc_[e.offset + i], cum_share_[e.offset + i]);
  }
  return out;
}

}  // namespace palb::serve
