#include "serve/admission.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace palb::serve {

namespace {

/// Decorrelates the admission hash from the routing hash: both map the
/// request id into [0, 1) via SplitMix64, and without a salt the two
/// draws would be the *same* number — every admitted request would carry
/// a low hash and pile onto the low end of the routing CDF. XORing a
/// fixed odd constant plus a per-stream offset before scrambling makes
/// the admission draw independent of the routing draw and of every
/// other stream's, while staying a pure function of (stream, id).
constexpr std::uint64_t kAdmissionSalt = 0xC2B2AE3D27D4EB4Full;

double admission_unit(std::size_t stream, std::uint64_t request_id) {
  SplitMix64 mix(request_id ^
                 (kAdmissionSalt * (static_cast<std::uint64_t>(stream) + 1)));
  return static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
}

}  // namespace

AdmissionTable AdmissionTable::compile(const Topology& topology,
                                       const DispatchPlan& plan,
                                       std::uint64_t plan_version,
                                       const SlotInput& offered,
                                       double burst_margin) {
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  const std::size_t L = topology.num_datacenters();
  PALB_REQUIRE(plan.rate.size() == K,
               "plan/topology class-count mismatch in AdmissionTable");
  PALB_REQUIRE(offered.arrival_rate.size() == K,
               "offered/topology class-count mismatch in AdmissionTable");
  PALB_REQUIRE(burst_margin >= 0.0 && std::isfinite(burst_margin),
               "burst margin must be finite and non-negative");

  AdmissionTable table;
  table.num_classes_ = K;
  table.num_frontends_ = S;
  table.plan_version_ = plan_version;
  table.fraction_.assign(K * S, 0.0);

  // Planned dispatched rate per stream: what the optimizer provisioned.
  std::vector<double> planned(K * S, 0.0);
  for (std::size_t k = 0; k < K; ++k) {
    PALB_REQUIRE(plan.rate[k].size() == S,
                 "plan/topology front-end-count mismatch in AdmissionTable");
    PALB_REQUIRE(offered.arrival_rate[k].size() == S,
                 "offered/topology front-end-count mismatch in AdmissionTable");
    for (std::size_t s = 0; s < S; ++s) {
      const std::vector<double>& row = plan.rate[k][s];
      PALB_REQUIRE(row.size() == L,
                   "plan/topology DC-count mismatch in AdmissionTable");
      double total = 0.0;
      for (std::size_t l = 0; l < L; ++l) {
        PALB_REQUIRE(row[l] >= 0.0, "negative dispatch rate in AdmissionTable");
        total += row[l];
      }
      const double lambda = offered.arrival_rate[k][s];
      PALB_REQUIRE(lambda >= 0.0 && std::isfinite(lambda),
                   "offered arrival rate must be finite and non-negative");
      planned[k * S + s] = total;
    }
  }

  // Per front-end: pool the spare planned capacity of under-subscribed
  // streams, then grant it to over-subscribed streams in class order —
  // class 0 (interactive) refills first, so under front-end-wide
  // overload the batch classes run out of grant and shed first.
  for (std::size_t s = 0; s < S; ++s) {
    double spare = 0.0;
    for (std::size_t k = 0; k < K; ++k) {
      const double lambda = offered.arrival_rate[k][s];
      spare += std::max(0.0, planned[k * S + s] - lambda);
    }
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t i = k * S + s;
      const double lambda = offered.arrival_rate[k][s];
      if (lambda <= 0.0) {
        // Nothing offered: a provisioned stream stays open (a trickle
        // beyond the forecast should route, not shed), an unprovisioned
        // one stays closed.
        table.fraction_[i] = planned[i] > 0.0 ? 1.0 : 0.0;
        continue;
      }
      const double deficit = std::max(0.0, lambda - planned[i]);
      const double grant = std::min(deficit, spare);
      spare -= grant;
      const double admitted = (planned[i] + grant) * (1.0 + burst_margin);
      table.fraction_[i] = std::min(1.0, admitted / lambda);
    }
  }
  return table;
}

bool AdmissionTable::admit(std::size_t klass, std::size_t frontend,
                           std::uint64_t request_id) const {
  const std::size_t i = klass * num_frontends_ + frontend;
  const double fraction = fraction_[i];
  if (fraction >= 1.0) return true;
  if (fraction <= 0.0) return false;
  return admission_unit(i, request_id) < fraction;
}

double AdmissionTable::admit_fraction(std::size_t klass,
                                      std::size_t frontend) const {
  return fraction_[klass * num_frontends_ + frontend];
}

AdmissionController::AdmissionController(Topology topology,
                                         const PlanHandle& plans,
                                         SlotInput offered,
                                         double burst_margin)
    : topology_(std::move(topology)),
      plans_(plans),
      burst_margin_(burst_margin) {
  topology_.validate();
  MutexLock lock(compile_mutex_);
  offered_ = std::move(offered);
  offered_epoch_ = 1;
}

void AdmissionController::set_offered(const SlotInput& offered) {
  MutexLock lock(compile_mutex_);
  offered_ = offered;
  ++offered_epoch_;
  // Recompile right away (when a plan exists): admit() only polls for
  // *plan-version* staleness on the fast path, so an offered-mix change
  // must not wait for the next publish to take effect.
  refresh_locked();
}

std::shared_ptr<const AdmissionTable> AdmissionController::table() const {
  MutexLock lock(table_mutex_);
  return table_;
}

std::uint64_t AdmissionController::table_version() const {
  MutexLock lock(table_mutex_);
  return table_ ? table_->plan_version() : 0;
}

bool AdmissionController::refresh_locked() const {
  // An offered-mix bump forces a recompile even at an unchanged plan
  // version; acquire_if_newer(0) returns the current snapshot whenever
  // any plan has been published.
  const bool stale_epoch = compiled_epoch_ != offered_epoch_;
  const std::uint64_t have = stale_epoch ? 0 : table_version();
  const std::optional<PlanHandle::Snapshot> snap =
      plans_.acquire_if_newer(have);
  if (!snap) return false;
  // Compile outside table_mutex_ — the Dispatcher's exact discipline:
  // readers keep admitting on the incumbent table for the whole build
  // and only wait out the pointer swap.
  auto compiled = std::make_shared<const AdmissionTable>(AdmissionTable::compile(
      topology_, *snap->plan, snap->version, offered_, burst_margin_));
  compiled_epoch_ = offered_epoch_;
  {
    MutexLock lock(table_mutex_);
    table_ = std::move(compiled);
  }
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool AdmissionController::refresh() const {
  MutexLock lock(compile_mutex_);
  return refresh_locked();
}

bool AdmissionController::try_refresh() const {
  if (!compile_mutex_.try_lock()) {
    // A peer is compiling this very swap; keep deciding on the
    // incumbent table rather than stalling behind the build.
    refresh_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool swapped = refresh_locked();
  compile_mutex_.unlock();
  return swapped;
}

bool AdmissionController::admit(std::size_t klass, std::size_t frontend,
                                std::uint64_t request_id) const {
  std::shared_ptr<const AdmissionTable> table = this->table();
  const std::uint64_t published = plans_.version();
  if (!table || table->plan_version() < published) {
    try_refresh();
    table = this->table();
  }
  if (!table) return true;  // no plan yet: route() reports kNoRoute anyway
  return table->admit(klass, frontend, request_id);
}

AdmissionController::Stats AdmissionController::stats() const {
  Stats out;
  out.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  out.refresh_skips = refresh_skips_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace palb::serve
