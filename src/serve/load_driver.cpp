#include "serve/load_driver.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "serve/routing_table.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace palb::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point since) {
  return std::chrono::duration<double>(Clock::now() - since).count();
}

constexpr std::uint64_t kIndexStride = 0x9E3779B97F4A7C15ull;

/// Calibrates the cost of one steady-clock read: the min over a burst
/// of back-to-back Clock::now() pairs is the irreducible read-to-read
/// distance, which every timed latency sample pays on top of the route
/// itself. Subtracting it keeps the sampled p50 honest — on a sub-100ns
/// fast path the clock read is a double-digit percentage of the sample.
double calibrate_clock_overhead_ns() {
  double best = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 256; ++i) {
    const auto a = Clock::now();
    const auto b = Clock::now();
    best = std::min(
        best, std::chrono::duration<double, std::nano>(b - a).count());
  }
  return best;
}

/// One driver thread's private tallies, merged after the join.
struct ThreadTally {
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t no_route = 0;
  std::uint64_t shed = 0;
  std::uint64_t min_version = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max_version = 0;
  std::vector<double> latency_ns;

  void count(const Route& route) {
    ++requests;
    if (route.routed()) {
      ++routed;
      min_version = std::min(min_version, route.plan_version);
      max_version = std::max(max_version, route.plan_version);
    } else if (route.status == RouteStatus::kShed) {
      ++shed;
    } else {
      ++no_route;
    }
  }
};

/// The full per-request decision with the admission gate in front: a
/// rejected request is shed (stamped with the gate's plan version) and
/// never reaches the routing table.
Route decide(const RoutingTable* table, const AdmissionTable* gate,
             const RequestStream::Request& req) {
  if (gate != nullptr && !gate->admit(req.klass, req.frontend, req.id)) {
    return Route{RouteStatus::kShed, 0, gate->plan_version()};
  }
  if (table == nullptr) return Route{};
  return table->route(req.klass, req.frontend, req.id);
}

/// The recorded decision word (load_driver.hpp, QpsReport::decisions).
std::uint64_t decision_word(const Route& route) {
  switch (route.status) {
    case RouteStatus::kRouted:
      return route.plan_version << 16 |
             (static_cast<std::uint64_t>(route.dc) + 1);
    case RouteStatus::kShed:
      return route.plan_version << 16 | 0xFFFFull;
    case RouteStatus::kNoRoute:
      break;
  }
  return 0;
}

}  // namespace

RequestStream RequestStream::compile(const Topology& topology,
                                     const SlotInput& mix,
                                     std::uint64_t seed) {
  const std::size_t K = topology.num_classes();
  const std::size_t S = topology.num_frontends();
  PALB_REQUIRE(mix.arrival_rate.size() == K,
               "mix/topology class-count mismatch in RequestStream");
  RequestStream stream;
  stream.seed_ = seed;
  double total = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    PALB_REQUIRE(mix.arrival_rate[k].size() == S,
                 "mix/topology front-end-count mismatch in RequestStream");
    for (std::size_t s = 0; s < S; ++s) total += mix.arrival_rate[k][s];
  }
  PALB_REQUIRE(total > 0.0,
               "RequestStream needs at least one positive arrival rate");
  double cumulative = 0.0;
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      const double rate = mix.arrival_rate[k][s];
      if (rate <= 0.0) continue;
      cumulative += rate / total;
      stream.cum_.push_back(cumulative);
      stream.klass_.push_back(static_cast<std::uint32_t>(k));
      stream.frontend_.push_back(static_cast<std::uint32_t>(s));
    }
  }
  stream.cum_.back() = 1.0;
  return stream;
}

RequestStream::Request RequestStream::at(std::uint64_t index) const {
  // Stateless golden-ratio scramble: (seed, index) -> two independent
  // 64-bit draws, so any thread partition replays the same stream.
  SplitMix64 mix(seed_ ^ (kIndexStride * (index + 1)));
  const double u =
      static_cast<double>(mix.next() >> 11) * 0x1.0p-53;
  const std::uint64_t id = mix.next();
  const auto hit = std::upper_bound(cum_.begin(), cum_.end(), u);
  const std::size_t i = hit == cum_.end()
                            ? cum_.size() - 1
                            : static_cast<std::size_t>(hit - cum_.begin());
  return Request{klass_[i], frontend_[i], id};
}

QpsReport run_qps(const Dispatcher& dispatcher, const RequestStream& stream,
                  const QpsOptions& options) {
  std::size_t threads = options.threads == 0
                            ? std::max<std::size_t>(
                                  1, std::thread::hardware_concurrency())
                            : options.threads;
  const bool fixed = options.total_requests > 0;
  if (fixed) {
    threads =
        std::min<std::size_t>(threads, options.total_requests);
  }
  const std::uint64_t refresh_every = std::max<std::uint64_t>(
      1, options.refresh_every);
  const std::uint64_t sample_every = std::max<std::uint64_t>(
      1, options.latency_sample_every);

  QpsReport report;
  report.threads = threads;
  if (options.record_decisions) {
    PALB_REQUIRE(fixed,
                 "record_decisions needs fixed mode (total_requests > 0)");
    report.decisions.assign(options.total_requests, 0);
  }

  // Catch the tables up to the current plan before any driver starts:
  // without this, the very first try_refresh() race lets the losing
  // threads route a batch against a not-yet-compiled (or stale) table,
  // which would make fixed-mode recordings depend on thread timing.
  // Plans published *during* the run are still picked up at batch
  // boundaries only. The admission gate follows the same discipline.
  dispatcher.refresh();
  const AdmissionController* admission = options.admission;
  if (admission != nullptr) admission->refresh();
  report.clock_overhead_ns = fixed ? 0.0 : calibrate_clock_overhead_ns();

  const Dispatcher::Stats before = dispatcher.stats();
  std::vector<ThreadTally> tallies(threads);
  std::vector<std::thread> drivers;
  drivers.reserve(threads);
  const auto start = Clock::now();

  if (fixed) {
    // Contiguous index blocks per thread (SlotController's layout): the
    // decision at stream index i is identical no matter which thread
    // owns i, so recordings are byte-identical across thread counts.
    const std::uint64_t total = options.total_requests;
    const std::uint64_t base = total / threads;
    const std::uint64_t extra = total % threads;
    std::uint64_t offset = 0;
    for (std::size_t t = 0; t < threads; ++t) {
      const std::uint64_t count = base + (t < extra ? 1 : 0);
      const std::uint64_t first = offset;
      offset += count;
      drivers.emplace_back([&, t, first, count] {
        ThreadTally& tally = tallies[t];
        std::shared_ptr<const RoutingTable> table = dispatcher.tables();
        std::shared_ptr<const AdmissionTable> gate =
            admission != nullptr ? admission->table() : nullptr;
        for (std::uint64_t n = 0; n < count; ++n) {
          if (n % refresh_every == 0) {
            dispatcher.try_refresh();
            table = dispatcher.tables();
            if (admission != nullptr) {
              admission->try_refresh();
              gate = admission->table();
            }
          }
          const std::uint64_t index = first + n;
          const RequestStream::Request req = stream.at(index);
          const Route route = decide(table.get(), gate.get(), req);
          tally.count(route);
          if (!report.decisions.empty()) {
            report.decisions[index] = decision_word(route);
          }
        }
      });
    }
  } else {
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(options.seconds));
    for (std::size_t t = 0; t < threads; ++t) {
      // `deadline` by value: the block scope it lives in closes before
      // the join below, so a reference capture would dangle.
      drivers.emplace_back([&, t, deadline] {
        ThreadTally& tally = tallies[t];
        // Disjoint per-thread index ranges decorrelate the streams
        // without shared state; 2^40 indices per thread is days of
        // headroom at any realistic rate.
        const std::uint64_t first = static_cast<std::uint64_t>(t) << 40;
        std::shared_ptr<const RoutingTable> table = dispatcher.tables();
        std::shared_ptr<const AdmissionTable> gate =
            admission != nullptr ? admission->table() : nullptr;
        // Countdown gate instead of `n % sample_every`: the unsampled
        // fast path pays one predictable dec-and-branch, not a 64-bit
        // modulo per request.
        std::uint64_t until_sample = 1;
        std::uint64_t n = 0;
        while (Clock::now() < deadline) {
          const std::uint64_t batch_end = n + refresh_every;
          for (; n < batch_end; ++n) {
            const RequestStream::Request req = stream.at(first + n);
            if (--until_sample == 0) {
              until_sample = sample_every;
              const auto t0 = Clock::now();
              const Route route = decide(table.get(), gate.get(), req);
              const auto t1 = Clock::now();
              tally.count(route);
              const double raw =
                  std::chrono::duration<double, std::nano>(t1 - t0)
                      .count();
              tally.latency_ns.push_back(
                  std::max(0.0, raw - report.clock_overhead_ns));
            } else {
              tally.count(decide(table.get(), gate.get(), req));
            }
          }
          // Batch boundary: pick up any freshly published plan. Never
          // blocks — a peer mid-compile means we keep the incumbent.
          dispatcher.try_refresh();
          table = dispatcher.tables();
          if (admission != nullptr) {
            admission->try_refresh();
            gate = admission->table();
          }
        }
      });
    }
  }

  for (std::thread& th : drivers) th.join();
  report.elapsed_seconds = seconds_since(start);

  SampleSet latencies;
  std::uint64_t min_version = std::numeric_limits<std::uint64_t>::max();
  for (const ThreadTally& tally : tallies) {
    report.requests += tally.requests;
    report.routed += tally.routed;
    report.no_route += tally.no_route;
    report.shed += tally.shed;
    min_version = std::min(min_version, tally.min_version);
    report.max_plan_version =
        std::max(report.max_plan_version, tally.max_version);
    for (const double ns : tally.latency_ns) latencies.add(ns);
  }
  report.min_plan_version = report.routed > 0 ? min_version : 0;
  report.latency_samples = latencies.samples().size();
  if (report.latency_samples > 0) {
    report.p50_ns = latencies.quantile(0.50);
    report.p90_ns = latencies.quantile(0.90);
    report.p99_ns = latencies.quantile(0.99);
    report.p999_ns = latencies.quantile(0.999);
    report.max_ns = latencies.max();
  }

  const Dispatcher::Stats after = dispatcher.stats();
  report.dispatcher.rebuilds = after.rebuilds - before.rebuilds;
  report.dispatcher.refresh_skips =
      after.refresh_skips - before.refresh_skips;
  report.dispatcher.stalled_routes =
      after.stalled_routes - before.stalled_routes;
  return report;
}

std::uint64_t wait_for_version(const Dispatcher& dispatcher,
                               std::uint64_t min_version,
                               double timeout_seconds) {
  const auto start = Clock::now();
  for (;;) {
    dispatcher.refresh();
    const std::uint64_t have = dispatcher.table_version();
    if (have >= min_version || seconds_since(start) >= timeout_seconds) {
      return have;
    }
    std::this_thread::yield();
  }
}

}  // namespace palb::serve
