#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "cloud/model.hpp"
#include "core/plan_handle.hpp"
#include "util/annotations.hpp"
#include "util/mutex.hpp"

namespace palb::serve {

/// Immutable per-(class, front-end) admission table compiled from one
/// DispatchPlan and the slot's *offered* mix — the overload gate that
/// sits in front of Dispatcher::route (docs/OVERLOAD.md).
///
/// Sizing: each stream's admitted capacity starts at the plan's total
/// dispatched rate for that stream (what the optimizer actually
/// provisioned). Spare planned capacity of under-subscribed streams at
/// the same front-end is then pooled and re-granted in class-priority
/// order — class 0 (interactive) first — so when the front-end as a
/// whole is overloaded, batch classes shed before interactive ones.
/// A burst margin on top absorbs the Poisson jitter of a stream that
/// is exactly at plan.
///
/// The per-request decision is a deterministic "hash-space token
/// bucket": request id -> SplitMix64 hash into [0, 1), admitted iff the
/// hash falls below the stream's admit fraction. admit() is therefore a
/// pure function of (table, class, front-end, request id) — no counters,
/// no clock — which is what keeps shed/route decision sequences
/// byte-identical across driver-thread counts (the same guarantee
/// RoutingTable::route gives, tests/test_dispatch_determinism.cpp).
///
/// A rung-5 shed-all plan admits nothing: every planned rate is zero, so
/// every admit fraction is zero and 100% of requests shed — the
/// acceptance case tests/test_admission.cpp pins down.
class AdmissionTable {
 public:
  AdmissionTable() = default;

  /// Compiles the admit fractions for `plan` (published as
  /// `plan_version`) against the offered arrival rates in `offered`.
  /// Throws InvalidArgument on a shape mismatch or a negative rate.
  static AdmissionTable compile(const Topology& topology,
                                const DispatchPlan& plan,
                                std::uint64_t plan_version,
                                const SlotInput& offered,
                                double burst_margin);

  /// Admission-controls one class-`klass` request at front-end
  /// `frontend`. Pure and lock-free: any number of threads may call it
  /// on a shared immutable table.
  bool admit(std::size_t klass, std::size_t frontend,
             std::uint64_t request_id) const;

  /// The compiled admit fraction of one stream, in [0, 1] — the test
  /// surface for the sizing rules.
  double admit_fraction(std::size_t klass, std::size_t frontend) const;

  std::uint64_t plan_version() const { return plan_version_; }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t num_frontends() const { return num_frontends_; }

 private:
  std::size_t num_classes_ = 0;
  std::size_t num_frontends_ = 0;
  std::uint64_t plan_version_ = 0;
  /// fraction_[k * S + s]: probability mass of the id-hash space this
  /// stream admits.
  std::vector<double> fraction_;
};

/// Follows a PlanHandle the way the Dispatcher does — compile on version
/// change, hot-swap an immutable table under a pointer lock — but for
/// admission decisions. Sits *in front of* routing on the fast path:
///
///   if (!admission.admit(k, s, id)) return shed;
///   return dispatcher.route(k, s, id);
///
/// Writer side mirrors the Dispatcher's two-mutex discipline exactly:
/// compile_mutex_ serializes table builds (held across the whole
/// compile, readers unaffected), table_mutex_ guards only the pointer
/// swap and is a K2 fast-path mutex (tools/palb_analyze/layers.txt).
/// try_refresh() never blocks a reader behind a peer's compile.
///
/// The offered mix is part of admission sizing, so set_offered()
/// invalidates the compiled table even when the plan version has not
/// moved (the chaos harness re-points it every slot as demand-surge
/// faults reshape the offered load).
class AdmissionController {
 public:
  struct Stats {
    std::uint64_t rebuilds = 0;       ///< tables compiled and swapped in
    std::uint64_t refresh_skips = 0;  ///< try_refresh found a peer compiling
  };

  /// `plans` is not owned and must outlive the controller. `offered` is
  /// copied.
  AdmissionController(Topology topology, const PlanHandle& plans,
                      SlotInput offered, double burst_margin = 0.05);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Replaces the offered mix and invalidates the compiled table; the
  /// next refresh()/try_refresh() recompiles against the new mix.
  void set_offered(const SlotInput& offered)
      PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// Current immutable table snapshot (null before the first plan is
  /// published and compiled). Hold it across a request batch, exactly
  /// like Dispatcher::tables().
  std::shared_ptr<const AdmissionTable> table() const
      PALB_EXCLUDES(table_mutex_);

  /// Recompiles and swaps iff the plan handle has advanced past the
  /// compiled version (or set_offered invalidated the table). Returns
  /// true when a new table was swapped in.
  bool refresh() const PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// refresh() that declines to wait behind a peer's compile.
  bool try_refresh() const PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// One-shot coherent admit: refreshes opportunistically when stale,
  /// then decides. Admits everything before the first plan compiles
  /// (routing reports kNoRoute then anyway).
  bool admit(std::size_t klass, std::size_t frontend,
             std::uint64_t request_id) const
      PALB_EXCLUDES(compile_mutex_, table_mutex_);

  /// Plan version of the current table (0 = none compiled yet).
  std::uint64_t table_version() const PALB_EXCLUDES(table_mutex_);

  Stats stats() const;

 private:
  bool refresh_locked() const PALB_REQUIRES(compile_mutex_)
      PALB_EXCLUDES(table_mutex_);

  Topology topology_;
  const PlanHandle& plans_;
  double burst_margin_;
  /// Fixed order: compile_mutex_ before table_mutex_ — the Dispatcher's
  /// exact idiom (dispatcher.hpp), and the same K2 designation.
  mutable Mutex compile_mutex_;
  mutable Mutex table_mutex_ PALB_ACQUIRED_AFTER(compile_mutex_);
  SlotInput offered_ PALB_GUARDED_BY(compile_mutex_);
  /// Bumped by set_offered(); a table is stale when its epoch or plan
  /// version lags.
  std::uint64_t offered_epoch_ PALB_GUARDED_BY(compile_mutex_) = 0;
  mutable std::uint64_t compiled_epoch_ PALB_GUARDED_BY(compile_mutex_) = 0;
  mutable std::shared_ptr<const AdmissionTable> table_
      PALB_GUARDED_BY(table_mutex_);
  mutable std::atomic<std::uint64_t> rebuilds_{0};
  mutable std::atomic<std::uint64_t> refresh_skips_{0};
};

}  // namespace palb::serve
