#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/controller.hpp"
#include "core/policy.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"
#include "serve/load_driver.hpp"

namespace palb::serve {

/// Chaos-harness configuration (docs/OVERLOAD.md). The harness is the
/// acceptance gate for overload-hardened serving: it drives a
/// ResilientController pass through a fault schedule (planner stalls,
/// publish delays, demand surges, plus the legacy fault kinds), then
/// replays the serving fast path slot by slot — republishing exactly
/// the plan that was *live* after each slot and admission-controlling
/// the slot's *faulted* offered mix — and checks that the dispatcher
/// kept serving: zero stalled routes, bounded shed fraction, stale
/// exposure within the TTL, and decisions byte-identical across driver
/// thread counts.
///
/// Everything the report contains is a pure function of (scenario,
/// schedule, policy, options): stalls and delays enter through
/// deterministic FaultKinds, not the wall-clock watchdog, so two chaos
/// runs with the same inputs agree bit for bit (the timed latency tail
/// is the one excepted, clock-dependent section).
struct ChaosOptions {
  std::size_t num_slots = 24;
  std::size_t first_slot = 0;
  /// Candidate-solve fan-out of the slow-path pass.
  std::size_t solve_workers = 1;
  /// Fixed-mode requests replayed per slot per thread-count.
  std::uint64_t requests_per_slot = 4096;
  /// Seeds the per-slot RequestStream (slot index is mixed in).
  std::uint64_t stream_seed = 42;
  /// Driver thread counts whose decision recordings must compare equal.
  std::vector<std::size_t> thread_counts = {1, 2, 4};
  /// Stale-plan TTL forwarded to the slow path (resilient_controller.hpp).
  std::size_t stale_plan_ttl_slots = 3;
  /// Admission burst margin (serve/admission.hpp).
  double burst_margin = 0.05;
  /// Timed throughput/latency pass against the final live plan, with
  /// admission enabled; 0 skips it (keeps smoke runs fast and the
  /// report fully deterministic).
  double timed_seconds = 0.0;
  /// Checker / heuristic configuration for the slow-path pass. `live`,
  /// `workers`, and `stale_plan_ttl_slots` are overwritten.
  ResilientController::Options resilient;
};

/// Everything one chaos run measured.
struct ChaosReport {
  std::size_t slots = 0;

  // Slow-path telemetry (RunResult pass-through).
  std::size_t faulted_slots = 0;
  std::size_t stalled_solves = 0;
  std::size_t delayed_publishes = 0;
  std::size_t ttl_escalations = 0;
  std::vector<int> fallback_rungs;

  // Fast-path replay tallies (counted once, at the first thread count).
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t no_route = 0;
  std::uint64_t shed = 0;
  double shed_fraction() const {
    return requests > 0
               ? static_cast<double>(shed) / static_cast<double>(requests)
               : 0.0;
  }

  /// Stale-plan exposure across the replay: slot t served the plan of
  /// slot live_slots[t], so its staleness is t - live_slots[t] slots.
  std::size_t max_stale_slots = 0;
  double mean_stale_slots = 0.0;

  /// Summed Dispatcher stall count across every replay — contractually
  /// 0 (the "dispatcher keeps serving" acceptance gate).
  std::uint64_t stalled_routes = 0;
  /// True iff every slot's decision recording compared equal across all
  /// ChaosOptions::thread_counts.
  bool decisions_identical = true;

  /// Timed pass (zeros when ChaosOptions::timed_seconds == 0).
  double timed_qps = 0.0;
  double p50_ns = 0.0, p99_ns = 0.0, p999_ns = 0.0, max_ns = 0.0;
  std::uint64_t latency_samples = 0;
};

/// Runs the chaos harness; see ChaosOptions. `policy` must tolerate the
/// slow-path pass exactly as ResilientController::run requires.
ChaosReport run_chaos(const Scenario& scenario, const FaultSchedule& schedule,
                      Policy& policy, const ChaosOptions& options);

}  // namespace palb::serve
