#include "serve/dispatcher.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>

#include "core/plan_handle.hpp"
#include "serve/routing_table.hpp"
#include "util/mutex.hpp"

namespace palb::serve {

Dispatcher::Dispatcher(Topology topology, const PlanHandle& plans)
    : topology_(std::move(topology)), plans_(plans) {
  topology_.validate();
}

std::shared_ptr<const RoutingTable> Dispatcher::tables() const {
  MutexLock lock(table_mutex_);
  return tables_;
}

std::uint64_t Dispatcher::table_version() const {
  MutexLock lock(table_mutex_);
  return tables_ ? tables_->plan_version() : 0;
}

bool Dispatcher::refresh_locked() const {
  const std::uint64_t have = table_version();
  const std::optional<PlanHandle::Snapshot> snap =
      plans_.acquire_if_newer(have);
  if (!snap) return false;
  // Compile outside table_mutex_: readers keep routing on the incumbent
  // table for the whole build and only wait out the pointer swap.
  auto compiled = std::make_shared<const RoutingTable>(
      RoutingTable::compile(topology_, *snap->plan, snap->version));
  {
    MutexLock lock(table_mutex_);
    tables_ = std::move(compiled);
  }
  rebuilds_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool Dispatcher::refresh() const {
  MutexLock lock(compile_mutex_);
  return refresh_locked();
}

bool Dispatcher::try_refresh() const {
  if (!compile_mutex_.try_lock()) {
    // A peer is compiling this very swap; routing continues on the
    // incumbent table rather than stalling behind the build.
    refresh_skips_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool swapped = refresh_locked();
  compile_mutex_.unlock();
  return swapped;
}

Route Dispatcher::route(std::size_t klass, std::size_t frontend,
                        std::uint64_t request_id) const {
  std::shared_ptr<const RoutingTable> table = tables();
  const std::uint64_t published = plans_.version();
  if (!table || table->plan_version() < published) {
    // Stale (or never compiled): rebuild opportunistically. try_refresh
    // never blocks, so a route cannot stall on a concurrent swap — if
    // it ever did, stalled_routes would record the contract breach.
    try_refresh();
    table = tables();
  }
  if (!table) return Route{RouteStatus::kNoRoute, 0, 0};
  return table->route(klass, frontend, request_id);
}

Dispatcher::Stats Dispatcher::stats() const {
  Stats out;
  out.rebuilds = rebuilds_.load(std::memory_order_relaxed);
  out.refresh_skips = refresh_skips_.load(std::memory_order_relaxed);
  out.stalled_routes = stalled_routes_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace palb::serve
