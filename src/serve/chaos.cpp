#include "serve/chaos.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/plan_handle.hpp"
#include "fault/resilient_controller.hpp"
#include "serve/admission.hpp"
#include "serve/dispatcher.hpp"
#include "serve/load_driver.hpp"
#include "util/error.hpp"

namespace palb::serve {

namespace {

double total_offered(const SlotInput& input) {
  double total = 0.0;
  for (const std::vector<double>& row : input.arrival_rate) {
    for (const double rate : row) total += rate;
  }
  return total;
}

}  // namespace

ChaosReport run_chaos(const Scenario& scenario, const FaultSchedule& schedule,
                      Policy& policy, const ChaosOptions& options) {
  PALB_REQUIRE(options.num_slots > 0, "chaos run needs at least one slot");
  PALB_REQUIRE(!options.thread_counts.empty(),
               "chaos run needs at least one driver thread count");

  // ---- Slow path: one ResilientController pass with a live handle, so
  // live_slots records which plan the fast path would have served after
  // every slot (including publish-delay suppressions and TTL forces).
  ResilientController controller(scenario, schedule);
  ResilientController::Options run_options = options.resilient;
  run_options.workers = options.solve_workers;
  run_options.stale_plan_ttl_slots = options.stale_plan_ttl_slots;
  PlanHandle solve_live;
  run_options.live = &solve_live;
  const RunResult run =
      controller.run(policy, options.num_slots, options.first_slot,
                     run_options);

  ChaosReport report;
  report.slots = options.num_slots;
  report.faulted_slots = run.faulted_slots;
  report.stalled_solves = run.stalled_solves;
  report.delayed_publishes = run.delayed_publishes;
  report.ttl_escalations = run.ttl_escalations;
  report.fallback_rungs = run.fallback_rungs;

  // ---- Fast path: per-slot replay. Each slot republishes the plan
  // that was live after it and admission-controls the slot's *faulted*
  // offered mix — so a demand surge overloads admission exactly as it
  // would have overloaded the real front-ends, against whatever
  // (possibly stale) plan the slow path had managed to publish.
  PlanHandle replay_live;
  Dispatcher dispatcher(scenario.topology, replay_live);
  AdmissionController admission(scenario.topology, replay_live,
                                scenario.slot_input(options.first_slot),
                                options.burst_margin);
  double stale_sum = 0.0;
  for (std::size_t t = 0; t < options.num_slots; ++t) {
    const FaultedSlot world =
        schedule.materialize(scenario, options.first_slot + t);
    const std::int64_t live_index = run.live_slots[t];
    if (live_index >= 0) {
      // Re-publishes a plan the ResilientController pass above already
      // ran through the checker's audit/repair path; the replay must
      // serve those bytes verbatim.
      // palb-lint: allow(P2) replaying already-audited plans verbatim
      replay_live.publish(run.plans[static_cast<std::size_t>(live_index)]);
      const std::size_t stale =
          t - static_cast<std::size_t>(live_index);
      report.max_stale_slots = std::max(report.max_stale_slots, stale);
      stale_sum += static_cast<double>(stale);
    }
    admission.set_offered(world.input);

    if (total_offered(world.input) <= 0.0) continue;  // nothing arrives
    const RequestStream stream = RequestStream::compile(
        scenario.topology, world.input,
        options.stream_seed ^ (options.first_slot + t));

    QpsOptions qps;
    qps.total_requests = options.requests_per_slot;
    qps.record_decisions = true;
    qps.admission = &admission;
    std::vector<std::uint64_t> baseline;
    for (std::size_t i = 0; i < options.thread_counts.size(); ++i) {
      qps.threads = options.thread_counts[i];
      const QpsReport replay = run_qps(dispatcher, stream, qps);
      report.stalled_routes += replay.dispatcher.stalled_routes;
      if (i == 0) {
        baseline = replay.decisions;
        report.requests += replay.requests;
        report.routed += replay.routed;
        report.no_route += replay.no_route;
        report.shed += replay.shed;
      } else if (replay.decisions != baseline) {
        report.decisions_identical = false;
      }
    }
  }
  report.mean_stale_slots =
      stale_sum / static_cast<double>(options.num_slots);

  // ---- Optional timed tail against the final live state.
  if (options.timed_seconds > 0.0) {
    const FaultedSlot world = schedule.materialize(
        scenario, options.first_slot + options.num_slots - 1);
    if (total_offered(world.input) > 0.0) {
      const RequestStream stream = RequestStream::compile(
          scenario.topology, world.input, options.stream_seed);
      QpsOptions qps;
      qps.seconds = options.timed_seconds;
      qps.admission = &admission;
      const QpsReport timed = run_qps(dispatcher, stream, qps);
      report.stalled_routes += timed.dispatcher.stalled_routes;
      report.timed_qps = timed.qps();
      report.p50_ns = timed.p50_ns;
      report.p99_ns = timed.p99_ns;
      report.p999_ns = timed.p999_ns;
      report.max_ns = timed.max_ns;
      report.latency_samples = timed.latency_samples;
    }
  }
  return report;
}

}  // namespace palb::serve
