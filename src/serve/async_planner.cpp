#include "serve/async_planner.hpp"

#include <cstddef>
#include <future>
#include <utility>

#include "core/controller.hpp"
#include "core/policy.hpp"
#include "fault/resilient_controller.hpp"

namespace palb::serve {

AsyncPlanner::AsyncPlanner(Scenario scenario, FaultSchedule schedule,
                           PlanHandle& live)
    : AsyncPlanner(std::move(scenario), std::move(schedule), live,
                   Options{}) {}

AsyncPlanner::AsyncPlanner(Scenario scenario, FaultSchedule schedule,
                           PlanHandle& live, Options options)
    : controller_(std::move(scenario), std::move(schedule)),
      live_(live),
      options_(options),
      pool_(1) {}

AsyncPlanner::~AsyncPlanner() { pool_.shutdown(); }

std::future<RunResult> AsyncPlanner::solve_async(Policy& policy,
                                                 std::size_t num_slots,
                                                 std::size_t first_slot) {
  return pool_.submit([this, &policy, num_slots, first_slot] {
    ResilientController::Options run_options = options_.resilient;
    run_options.workers = options_.solve_workers;
    run_options.live = &live_;
    return controller_.run(policy, num_slots, first_slot, run_options);
  });
}

}  // namespace palb::serve
