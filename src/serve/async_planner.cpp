#include "serve/async_planner.hpp"

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <future>
#include <optional>
#include <thread>
#include <utility>

#include "core/controller.hpp"
#include "core/policy.hpp"
#include "fault/resilient_controller.hpp"
#include "util/mutex.hpp"
#include "util/rng.hpp"

namespace palb::serve {

namespace {

using Clock = std::chrono::steady_clock;

/// One rung down the effort ladder per retry; kPreviousPlan is the
/// floor (a run capped there does no candidate solving at all, so it
/// cannot blow any deadline the ladder itself doesn't).
FallbackRung lower_effort(FallbackRung effort) {
  switch (effort) {
    case FallbackRung::kFullSolve:
      return FallbackRung::kReducedResolve;
    case FallbackRung::kReducedResolve:
      return FallbackRung::kPreviousPlan;
    default:
      return effort;
  }
}

}  // namespace

AsyncPlanner::AsyncPlanner(Scenario scenario, FaultSchedule schedule,
                           PlanHandle& live)
    : AsyncPlanner(std::move(scenario), std::move(schedule), live,
                   Options{}) {}

AsyncPlanner::AsyncPlanner(Scenario scenario, FaultSchedule schedule,
                           PlanHandle& live, Options options)
    : controller_(std::move(scenario), std::move(schedule)),
      live_(live),
      options_(options),
      pool_(1) {}

AsyncPlanner::~AsyncPlanner() { pool_.shutdown(); }

RunResult AsyncPlanner::run_guarded(Policy& policy, std::size_t num_slots,
                                    std::size_t first_slot) {
  ResilientController::Options run_options = options_.resilient;
  run_options.workers = options_.solve_workers;
  run_options.live = &live_;
  const Watchdog& wd = options_.watchdog;
  if (wd.solve_deadline_seconds <= 0.0) {
    return controller_.run(policy, num_slots, first_slot, run_options);
  }

  // Deterministic backoff jitter: a pure function of (seed, first_slot,
  // retry index), so two planners configured alike back off alike.
  SplitMix64 jitter(wd.jitter_seed ^
                    (0x9E3779B97F4A7C15ull *
                     (static_cast<std::uint64_t>(first_slot) + 1)));
  std::optional<Clock::time_point> first_expiry;
  RunResult result;
  for (std::size_t attempt = 0;; ++attempt) {
    std::atomic<bool> cancel{false};
    Mutex mu;
    CondVar cv;
    bool done = false;     // under mu
    bool expired = false;  // written by the dog under mu, read after join
    // The watchdog itself: sleeps on the condvar for the remaining
    // budget, and on a genuine timeout flips the cancel token —
    // in-flight full solves abort at their next pivot-batch poll and
    // the ladder serves the rest of the run from cheaper rungs.
    std::thread dog([&] {
      const auto armed = Clock::now();
      MutexLock lock(mu);
      while (!done) {
        const double remaining =
            wd.solve_deadline_seconds -
            std::chrono::duration<double>(Clock::now() - armed).count();
        if (remaining <= 0.0) break;
        cv.wait_for(mu, remaining);  // spurious wakeups re-check above
      }
      if (!done) {
        expired = true;
        cancel.store(true, std::memory_order_relaxed);
      }
    });
    run_options.cancel = &cancel;
    result = controller_.run(policy, num_slots, first_slot, run_options);
    {
      MutexLock lock(mu);
      done = true;
    }
    cv.notify_all();
    dog.join();

    if (!expired) break;
    deadline_expirations_.fetch_add(1, std::memory_order_relaxed);
    if (!first_expiry) first_expiry = Clock::now();
    if (attempt >= wd.max_retries) break;
    retries_.fetch_add(1, std::memory_order_relaxed);
    const double unit =
        static_cast<double>(jitter.next() >> 11) * 0x1.0p-53;
    const double backoff = wd.backoff_base_seconds *
                           static_cast<double>(std::uint64_t{1} << attempt) *
                           (0.5 + unit);
    // Retry backoff paces the wall-clock watchdog, which is deliberately
    // outside the determinism perimeter (docs/OVERLOAD.md); the plans
    // themselves stay a pure function of (topology, input, max_effort).
    // palb-lint: allow(D1) watchdog backoff never shapes plan contents
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
    run_options.max_effort = lower_effort(run_options.max_effort);
  }
  if (first_expiry) {
    stale_plan_ns_.fetch_add(
        static_cast<std::uint64_t>(
            std::chrono::duration<double, std::nano>(Clock::now() -
                                                     *first_expiry)
                .count()),
        std::memory_order_relaxed);
  }
  return result;
}

std::future<RunResult> AsyncPlanner::solve_async(Policy& policy,
                                                 std::size_t num_slots,
                                                 std::size_t first_slot) {
  return pool_.submit([this, &policy, num_slots, first_slot] {
    return run_guarded(policy, num_slots, first_slot);
  });
}

AsyncPlanner::WatchdogStats AsyncPlanner::watchdog_stats() const {
  WatchdogStats out;
  out.deadline_expirations =
      deadline_expirations_.load(std::memory_order_relaxed);
  out.retries = retries_.load(std::memory_order_relaxed);
  out.stale_plan_ns = stale_plan_ns_.load(std::memory_order_relaxed);
  return out;
}

}  // namespace palb::serve
