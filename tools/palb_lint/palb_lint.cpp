// palb_lint — a standalone token-level invariant checker for this repo.
//
// clang-tidy and the compiler enforce language-level rules; this tool
// enforces three *project* invariants that neither can express
// (docs/STATIC_ANALYSIS.md tier 6):
//
//   D1  determinism  — plan-affecting code must not consult wall clocks,
//                      PRNGs, or sleep; core/solver additionally must not
//                      iterate unordered containers (iteration order would
//                      leak into plans and break the byte-identical
//                      determinism guarantee).
//   U1  units seam   — the dimensional-analysis escape hatch `.value()`
//                      may appear only at the audited boundary files where
//                      raw doubles legitimately enter or leave the typed
//                      quantity layer.
//   P1  plan lifecycle — `evaluate_plan(` / `simulate(` may be called only
//                      from the audited ledger/simulator call sites, so a
//                      plan cannot be scored by a side channel that skips
//                      the PlanChecker audit path.
//
// Mechanics: each file is scanned once; comments, string literals
// (including raw strings), and character literals are blanked before
// token matching, so a banned name inside a string or comment never
// fires. Suppressions are ordinary comments of the form
//
//     // palb-lint: allow(D1) <non-empty reason>
//
// and apply to the same line when trailing code, otherwise to the next
// line. A suppression with a missing or empty reason is itself a
// finding — the reason is the audit trail.
//
// Exit status: 0 clean, 1 findings, 2 usage or I/O error.
//
// Deliberately dependency-free (no LLVM, no regex engine): the whole
// point is that it builds and runs on the bare gcc container in
// seconds, as a tier-1 ctest.
#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Finding {
  std::string path;  // repo-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

struct Comment {
  std::string text;
  std::size_t line = 0;   // line the comment starts on
  bool trailing = false;  // code precedes it on the same line
};

struct Suppression {
  std::string rule;
  std::size_t target_line = 0;
};

// ---------------------------------------------------------------------------
// Source scrubbing: blank comments / strings / char literals in place,
// preserving line structure, and collect the comments for suppression
// parsing.
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

struct ScrubResult {
  std::string code;  // same length as input; non-code bytes -> ' '
  std::vector<Comment> comments;
};

ScrubResult scrub(const std::string& in) {
  ScrubResult out;
  out.code.assign(in.size(), ' ');
  std::size_t line = 1;
  bool line_has_code = false;
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto bump_line = [&](char c) {
    if (c == '\n') {
      line += 1;
      line_has_code = false;
    }
  };

  while (i < n) {
    const char c = in[i];
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      Comment comment;
      comment.line = line;
      comment.trailing = line_has_code;
      i += 2;
      while (i < n && in[i] != '\n') comment.text.push_back(in[i++]);
      out.comments.push_back(std::move(comment));
      continue;  // newline handled by the main loop
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      Comment comment;
      comment.line = line;
      comment.trailing = line_has_code;
      i += 2;
      while (i + 1 < n && !(in[i] == '*' && in[i + 1] == '/')) {
        comment.text.push_back(in[i]);
        bump_line(in[i]);
        out.code[i] = (in[i] == '\n') ? '\n' : ' ';
        ++i;
      }
      if (i + 1 < n) i += 2;  // consume "*/"
      out.comments.push_back(std::move(comment));
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == '"' && i > 0 && in[i - 1] == 'R' &&
        (i < 2 || !is_ident_char(in[i - 2]))) {
      std::size_t j = i + 1;
      std::string delim;
      while (j < n && in[j] != '(') delim.push_back(in[j++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, j);
      if (end == std::string::npos) end = n;
      for (std::size_t k = i; k < std::min(end + closer.size(), n); ++k) {
        bump_line(in[k]);
        out.code[k] = (in[k] == '\n') ? '\n' : ' ';
      }
      i = std::min(end + closer.size(), n);
      line_has_code = true;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      ++i;
      while (i < n && in[i] != '"') {
        if (in[i] == '\\' && i + 1 < n) ++i;
        bump_line(in[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      line_has_code = true;
      continue;
    }
    // Character literal — but not a digit separator (1'000'000) and not
    // part of an identifier (alignof('x') is fine; user-defined suffix
    // separators never follow an identifier char in this codebase).
    if (c == '\'' && (i == 0 || !is_ident_char(in[i - 1]))) {
      ++i;
      while (i < n && in[i] != '\'') {
        if (in[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      line_has_code = true;
      continue;
    }
    // Plain code byte.
    out.code[i] = c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
    bump_line(c);
    ++i;
  }
  return out;
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// Parse "palb-lint: allow(RULE) reason" out of comment text. Returns
// true if the comment is a palb-lint directive at all (well-formed or
// not); fills either `supp` or `error`.
bool parse_suppression(const Comment& comment, Suppression* supp,
                       std::string* error) {
  static constexpr std::string_view kMarker = "palb-lint:";
  const std::size_t at = comment.text.find(kMarker);
  if (at == std::string::npos) return false;
  std::string rest = trim(std::string_view(comment.text).substr(at + kMarker.size()));
  static constexpr std::string_view kAllow = "allow(";
  if (rest.rfind(kAllow, 0) != 0) {
    *error = "malformed palb-lint directive; expected 'allow(RULE) reason'";
    return true;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    *error = "malformed palb-lint directive; missing ')' after rule name";
    return true;
  }
  const std::string rule = trim(std::string_view(rest).substr(kAllow.size(), close - kAllow.size()));
  const std::string reason = trim(std::string_view(rest).substr(close + 1));
  if (rule.empty()) {
    *error = "palb-lint suppression names no rule";
    return true;
  }
  if (reason.empty()) {
    *error = "palb-lint suppression of " + rule +
             " has no reason; a reason is required";
    return true;
  }
  supp->rule = rule;
  supp->target_line = comment.trailing ? comment.line : comment.line + 1;
  return true;
}

// ---------------------------------------------------------------------------
// Token helpers over scrubbed code.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  std::size_t begin = 0;  // offset in the line
};

std::vector<Token> identifiers(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_char(line[i]) &&
        std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
      Token t;
      t.begin = i;
      while (i < line.size() && is_ident_char(line[i])) t.text.push_back(line[i++]);
      out.push_back(std::move(t));
    } else {
      ++i;
    }
  }
  return out;
}

bool next_nonspace_is(const std::string& line, std::size_t pos, char want) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0)
    ++pos;
  return pos < line.size() && line[pos] == want;
}

bool prev_nonspace_is(const std::string& line, std::size_t pos, char want) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(line[pos - 1])) != 0)
    --pos;
  return pos > 0 && line[pos - 1] == want;
}

// ---------------------------------------------------------------------------
// Rule catalog.
// ---------------------------------------------------------------------------

bool path_in(const std::string& rel, std::initializer_list<std::string_view> dirs) {
  for (const std::string_view d : dirs) {
    if (rel.rfind(d, 0) == 0) return true;
  }
  return false;
}

bool path_is(const std::string& rel, std::initializer_list<std::string_view> files) {
  for (const std::string_view f : files) {
    if (rel == f) return true;
  }
  return false;
}

// D1: plan-affecting directories. Everything a DispatchPlan flows
// through between policy and audit — plus src/serve/, where the same
// discipline makes per-request routing a pure function of (plan,
// request id) and the QPS driver's streams a pure function of
// (mix, seed, index).
bool d1_applies(const std::string& rel) {
  return path_in(rel, {"src/core/", "src/solver/", "src/cloud/", "src/check/",
                       "src/fault/", "src/sim/", "src/forecast/",
                       "src/serve/"});
}

// D1 sub-rule: unordered containers only banned where iteration order
// could reach a plan (core enumeration and solver pivoting).
bool d1_unordered_applies(const std::string& rel) {
  return path_in(rel, {"src/core/", "src/solver/"});
}

// U1: the audited `.value()` boundary. Everything else must stay inside
// the typed quantity layer (src/units/ catches mixups at compile time
// only while values remain wrapped).
bool u1_allowlisted(const std::string& rel) {
  return path_is(rel, {"src/queueing/mg1.hpp", "src/queueing/mm1.hpp",
                       "src/units/units.hpp", "src/cloud/accounting.cpp",
                       "src/cloud/tuf.hpp", "src/check/plan_checker.cpp",
                       "src/core/balanced_policy.cpp",
                       "src/core/bigm_nlp_policy.cpp",
                       "src/core/optimized_policy.cpp"});
}

// P1: audited scorer call sites (definitions included — the definition
// file is where the contract lives).
bool p1_allowlisted(const std::string& rel) {
  return path_is(rel, {"src/sim/slot_simulator.cpp", "src/sim/slot_simulator.hpp",
                       "src/cloud/accounting.cpp", "src/cloud/accounting.hpp",
                       "src/core/controller.cpp",
                       "src/fault/resilient_controller.cpp",
                       "src/forecast/forecasting_controller.cpp",
                       "tools/tool_main.cpp"});
}

// Identifiers whose mere appearance breaks determinism (declaring a
// std::mt19937 member is as much a violation as calling it).
bool d1_banned_bare(const std::string& name) {
  static const std::vector<std::string> kBanned = {
      "rand",          "srand",         "random_device",
      "mt19937",       "mt19937_64",    "default_random_engine",
      "sleep_for",     "sleep_until",
  };
  return std::find(kBanned.begin(), kBanned.end(), name) != kBanned.end();
}

// Identifiers banned only in call position (the bare words are too
// common as nouns: `time`, `clock`).
bool d1_banned_call(const std::string& name) {
  return name == "time" || name == "clock" || name == "localtime" ||
         name == "gmtime";
}

bool p1_scorer(const std::string& name) {
  return name == "evaluate_plan" || name == "simulate";
}

void check_line(const std::string& rel, std::size_t line_no,
                const std::string& line, std::vector<Finding>* findings) {
  const std::vector<Token> toks = identifiers(line);
  for (const Token& tok : toks) {
    const std::size_t after = tok.begin + tok.text.size();
    const bool call_form = next_nonspace_is(line, after, '(');
    const bool member_access = prev_nonspace_is(line, tok.begin, '.') ||
                               (tok.begin >= 2 && line[tok.begin - 1] == '>' &&
                                line[tok.begin - 2] == '-');
    if (d1_applies(rel)) {
      if (d1_banned_bare(tok.text) || (call_form && d1_banned_call(tok.text))) {
        findings->push_back({rel, line_no, "D1",
                             "'" + tok.text +
                                 "' in plan-affecting code; plans must be a "
                                 "pure function of (topology, input)"});
      }
      if (d1_unordered_applies(rel) &&
          (tok.text == "unordered_map" || tok.text == "unordered_set")) {
        findings->push_back({rel, line_no, "D1",
                             "'" + tok.text +
                                 "' in core/solver; iteration order is "
                                 "load-factor-dependent and would leak into "
                                 "plans (use std::map / sorted vector)"});
      }
    }
    if (tok.text == "value" && call_form && member_access &&
        !u1_allowlisted(rel)) {
      findings->push_back({rel, line_no, "U1",
                           ".value() outside the audited units seam; keep "
                           "quantities typed or extend the allowlist in "
                           "docs/STATIC_ANALYSIS.md tier 6"});
    }
    if (p1_scorer(tok.text) && call_form && !p1_allowlisted(rel)) {
      findings->push_back({rel, line_no, "P1",
                           "'" + tok.text +
                               "(' outside the audited scorer call sites; "
                               "plans must be scored via the controller / "
                               "resilience path so the PlanChecker audit "
                               "cannot be skipped"});
    }
  }
}

// ---------------------------------------------------------------------------
// Per-file driver.
// ---------------------------------------------------------------------------

int lint_file(const fs::path& file, const fs::path& root,
              std::vector<Finding>* findings) {
  std::ifstream in(file, std::ios::binary);
  if (!in) {
    std::cerr << "palb-lint: cannot read " << file.string() << "\n";
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  std::error_code ec;
  fs::path rel_path = fs::proximate(fs::weakly_canonical(file, ec),
                                    fs::weakly_canonical(root, ec), ec);
  const std::string rel = rel_path.generic_string();

  const ScrubResult scrubbed = scrub(text);

  std::vector<Suppression> suppressions;
  for (const Comment& comment : scrubbed.comments) {
    Suppression supp;
    std::string error;
    if (!parse_suppression(comment, &supp, &error)) continue;
    if (!error.empty()) {
      findings->push_back({rel, comment.line, "LINT", error});
      continue;
    }
    suppressions.push_back(supp);
  }

  std::vector<Finding> raw;
  std::istringstream lines(scrubbed.code);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    check_line(rel, line_no, line, &raw);
  }

  for (Finding& f : raw) {
    const bool suppressed =
        std::any_of(suppressions.begin(), suppressions.end(),
                    [&f](const Suppression& s) {
                      return s.rule == f.rule && s.target_line == f.line;
                    });
    if (!suppressed) findings->push_back(std::move(f));
  }
  return 0;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

bool in_fixture_dir(const fs::path& p) {
  for (const fs::path& part : p) {
    if (part == "fixtures") return true;
  }
  return false;
}

void collect(const fs::path& arg, std::vector<fs::path>* files) {
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::recursive_directory_iterator(arg)) {
      if (entry.is_regular_file() && lintable(entry.path()) &&
          !in_fixture_dir(entry.path())) {
        files->push_back(entry.path());
      }
    }
  } else {
    // Explicit file arguments are always linted, fixtures included —
    // that is how the fixture tests drive the tool.
    files->push_back(arg);
  }
}

void print_rules() {
  std::cout
      << "palb-lint rules (docs/STATIC_ANALYSIS.md tier 6):\n"
      << "  D1  determinism    no rand/srand/random_device/mt19937/"
         "default_random_engine,\n"
      << "                     no sleep_for/sleep_until, no time()/clock() "
         "in plan-affecting\n"
      << "                     dirs (src/core, src/solver, src/cloud, "
         "src/check, src/fault,\n"
      << "                     src/sim, src/forecast, src/serve); "
         "additionally no unordered_map/\n"
      << "                     unordered_set in src/core + src/solver\n"
      << "  U1  units-seam     .value() only in the audited boundary files\n"
      << "  P1  plan-lifecycle evaluate_plan(/simulate( only at audited "
         "call sites\n"
      << "suppress with: // palb-lint: allow(RULE) <non-empty reason>\n";
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string report_path;
  std::vector<fs::path> args;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::cerr << "palb-lint: --root needs a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        std::cerr << "palb-lint: --report needs a file path\n";
        return 2;
      }
      report_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: palb_lint [--list-rules] [--root DIR] "
                   "[--report FILE] <files-or-dirs>...\n";
      return 0;
    } else {
      args.emplace_back(std::string(arg));
    }
  }
  if (args.empty()) {
    std::cerr << "palb-lint: no files or directories given (try --help)\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& arg : args) {
    if (!fs::exists(arg)) {
      std::cerr << "palb-lint: no such path: " << arg.string() << "\n";
      return 2;
    }
    collect(arg, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<Finding> findings;
  for (const fs::path& file : files) {
    if (const int status = lint_file(file, root, &findings); status != 0) {
      return status;
    }
  }

  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
        << "\n";
  }
  out << "palb-lint: " << findings.size() << " finding(s) in " << files.size()
      << " file(s) scanned\n";
  std::cout << out.str();
  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "palb-lint: cannot write report to " << report_path << "\n";
      return 2;
    }
    report << out.str();
  }
  return findings.empty() ? 0 : 1;
}
