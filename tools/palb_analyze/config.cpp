// layers.txt parser: the declared module-layering DAG (pass A), the
// reviewed edge exceptions, and the fast-path mutex designations rule
// K2 polices. The file is part of the analysis contract, so any
// malformed line is a hard error, not a skip — a typo must not
// silently un-declare a layer.
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {

bool load_config(const std::string& file, Config* config, std::string* error) {
  std::ifstream in(file);
  if (!in) {
    *error = "cannot read layers file: " + file;
    return false;
  }
  config->path = file;
  int next_rank = 1;
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(in, raw)) {
    ++line_no;
    const std::size_t hash = raw.find('#');
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim_copy(raw);
    if (line.empty()) continue;

    std::istringstream words(line);
    std::string keyword;
    words >> keyword;
    const auto fail = [&](const std::string& what) {
      *error = file + ":" + std::to_string(line_no) + ": " + what;
      return false;
    };

    if (keyword == "layer") {
      std::string module;
      bool any = false;
      while (words >> module) {
        if (config->rank.count(module) != 0)
          return fail("module '" + module + "' declared twice");
        config->rank[module] = next_rank;
        any = true;
      }
      if (!any) return fail("'layer' names no modules");
      ++next_rank;
    } else if (keyword == "toplevel") {
      std::string dir;
      bool any = false;
      while (words >> dir) {
        config->toplevel.push_back(dir);
        any = true;
      }
      if (!any) return fail("'toplevel' names no directories");
    } else if (keyword == "allow") {
      // allow FROM -> TO
      std::string from;
      std::string arrow;
      std::string to;
      if (!(words >> from >> arrow >> to) || arrow != "->")
        return fail("expected 'allow FROM -> TO'");
      config->allowed_edges.insert({from, to});
    } else if (keyword == "fastpath") {
      // fastpath COMPONENT MUTEX  (component = path stem, e.g.
      // core/plan_handle; mutex = member name, e.g. snap_mutex_)
      std::string component;
      std::string mutex;
      if (!(words >> component >> mutex))
        return fail("expected 'fastpath COMPONENT MUTEX'");
      config->fastpath.insert(component + "::" + mutex);
    } else {
      return fail("unknown directive '" + keyword + "'");
    }
  }
  if (config->rank.empty()) {
    *error = file + ": no 'layer' lines — the DAG must declare every module";
    return false;
  }
  config->loaded = true;
  return true;
}

}  // namespace palb_analyze
