// SARIF 2.1.0 writer — the minimal single-run document GitHub code
// scanning ingests: one tool descriptor with the rule catalog, one
// result per finding with a physicalLocation. Suppressed and
// baselined findings are emitted too (with "suppressions" /
// level "note") so the SARIF view shows the whole audit trail, not
// just what gates.
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

const std::map<std::string, std::string>& rule_descriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"D1", "determinism: no PRNG/clock/sleep in plan-affecting code"},
      {"U1", ".value() outside the audited units seam"},
      {"P1", "plan scorer called outside the audited call sites"},
      {"L1", "module-layering DAG violation (upward or same-rank include)"},
      {"K1", "lock-acquisition-order cycle (potential deadlock)"},
      {"K2", "blocking call while a fast-path mutex is held"},
      {"P2", "publish without a PlanChecker check/repair in the file"},
      {"P3", "DispatchPlan mutated outside the audited seams"},
      {"S1", "stale suppression: directive matches no finding"},
      {"S2", "stale baseline entry: capacity exceeds current findings"},
      {"LINT", "malformed palb-lint directive"},
  };
  return kRules;
}

}  // namespace

bool write_sarif(const std::string& file, const std::vector<Finding>& findings,
                 std::string* error) {
  std::ofstream out(file);
  if (!out) {
    *error = "cannot write SARIF: " + file;
    return false;
  }

  out << "{\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
         "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"palb-analyze\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const auto& [id, desc] : rule_descriptions()) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "            {\"id\": \"" << id
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(desc)
        << "\"}}";
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "        {\n"
        << "          \"ruleId\": \"" << json_escape(f.rule) << "\",\n"
        << "          \"level\": \"" << (f.gated ? "error" : "note") << "\",\n"
        << "          \"message\": {\"text\": \"" << json_escape(f.message)
        << "\"},\n"
        << "          \"locations\": [\n"
        << "            {\n"
        << "              \"physicalLocation\": {\n"
        << "                \"artifactLocation\": {\"uri\": \""
        << json_escape(f.path) << "\"},\n"
        << "                \"region\": {\"startLine\": "
        << (f.line == 0 ? 1 : f.line) << "}\n"
        << "              }\n"
        << "            }\n"
        << "          ]\n"
        << "        }";
  }
  out << (findings.empty() ? "]\n" : "\n      ]\n")
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.good();
}

}  // namespace palb_analyze
