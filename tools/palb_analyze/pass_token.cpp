// Token pass: the original palb-lint rules, unchanged semantics, on the
// shared scanner core.
//
//   D1  determinism  — plan-affecting code must not consult wall clocks,
//                      PRNGs, or sleep; core/solver additionally must not
//                      iterate unordered containers (iteration order would
//                      leak into plans and break the byte-identical
//                      determinism guarantee). bench/ and examples/ get
//                      the seeded-reproducibility subset: no ad-hoc PRNGs
//                      or sleeps (all randomness must flow through the
//                      seeded util/rng substreams), while wall-clock
//                      *timing* stays legal — that is what benches do.
//   U1  units seam   — the dimensional-analysis escape hatch `.value()`
//                      may appear only at the audited boundary files where
//                      raw doubles legitimately enter or leave the typed
//                      quantity layer.
//   P1  plan lifecycle — `evaluate_plan(` / `simulate(` may be called only
//                      from the audited ledger/simulator call sites, so a
//                      plan cannot be scored by a side channel that skips
//                      the PlanChecker audit path.
#include <algorithm>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

bool path_in(const std::string& rel,
             std::initializer_list<std::string_view> dirs) {
  for (const std::string_view d : dirs) {
    if (rel.rfind(d, 0) == 0) return true;
  }
  return false;
}

bool path_is(const std::string& rel,
             std::initializer_list<std::string_view> files) {
  for (const std::string_view f : files) {
    if (rel == f) return true;
  }
  return false;
}

// D1: plan-affecting directories. Everything a DispatchPlan flows
// through between policy and audit — plus src/serve/, where the same
// discipline makes per-request routing a pure function of (plan,
// request id) and the QPS driver's streams a pure function of
// (mix, seed, index).
bool d1_applies(const std::string& rel) {
  return path_in(rel, {"src/core/", "src/solver/", "src/cloud/", "src/check/",
                       "src/fault/", "src/sim/", "src/forecast/",
                       "src/serve/"});
}

// D1 seeded-reproducibility subset: bench/ and examples/ drive the
// library off fixed seeds so every reported number replays; an ad-hoc
// PRNG or a sleep would break that. Wall-clock reads stay legal here
// (benches time things), so the time()/clock() call ban does not apply.
bool d1_seeded_applies(const std::string& rel) {
  return path_in(rel, {"bench/", "examples/"});
}

// D1 sub-rule: unordered containers only banned where iteration order
// could reach a plan (core enumeration and solver pivoting).
bool d1_unordered_applies(const std::string& rel) {
  return path_in(rel, {"src/core/", "src/solver/"});
}

// U1/P1 police the library and its CLI seams; bench/ and examples/
// consume the audited interfaces and legitimately unwrap quantities in
// their report tables, so only src/ and tools/ are in scope.
bool u1_p1_scope(const std::string& rel) {
  return path_in(rel, {"src/", "tools/"});
}

// U1: the audited `.value()` boundary. Everything else must stay inside
// the typed quantity layer (src/units/ catches mixups at compile time
// only while values remain wrapped).
bool u1_allowlisted(const std::string& rel) {
  return path_is(rel, {"src/queueing/mg1.hpp", "src/queueing/mm1.hpp",
                       "src/units/units.hpp", "src/cloud/accounting.cpp",
                       "src/cloud/tuf.hpp", "src/check/plan_checker.cpp",
                       "src/core/balanced_policy.cpp",
                       "src/core/bigm_nlp_policy.cpp",
                       "src/core/optimized_policy.cpp"});
}

// P1: audited scorer call sites (definitions included — the definition
// file is where the contract lives).
bool p1_allowlisted(const std::string& rel) {
  return path_is(rel, {"src/sim/slot_simulator.cpp", "src/sim/slot_simulator.hpp",
                       "src/cloud/accounting.cpp", "src/cloud/accounting.hpp",
                       "src/core/controller.cpp",
                       "src/fault/resilient_controller.cpp",
                       "src/forecast/forecasting_controller.cpp",
                       "tools/tool_main.cpp"});
}

// Identifiers whose mere appearance breaks determinism (declaring a
// std::mt19937 member is as much a violation as calling it).
bool d1_banned_bare(const std::string& name) {
  static const std::vector<std::string> kBanned = {
      "rand",          "srand",         "random_device",
      "mt19937",       "mt19937_64",    "default_random_engine",
      "sleep_for",     "sleep_until",
  };
  return std::find(kBanned.begin(), kBanned.end(), name) != kBanned.end();
}

// Identifiers banned only in call position (the bare words are too
// common as nouns: `time`, `clock`).
bool d1_banned_call(const std::string& name) {
  return name == "time" || name == "clock" || name == "localtime" ||
         name == "gmtime";
}

bool p1_scorer(const std::string& name) {
  return name == "evaluate_plan" || name == "simulate";
}

void check_line(const std::string& rel, std::size_t line_no,
                const std::string& line, std::vector<Finding>* findings) {
  const std::vector<Token> toks = identifiers(line);
  for (const Token& tok : toks) {
    const std::size_t after = tok.begin + tok.text.size();
    const bool call_form = next_nonspace_is(line, after, '(');
    const bool member_access = is_member_access(line, tok.begin);
    if (d1_applies(rel)) {
      if (d1_banned_bare(tok.text) || (call_form && d1_banned_call(tok.text))) {
        findings->push_back({rel, line_no, "D1",
                             "'" + tok.text +
                                 "' in plan-affecting code; plans must be a "
                                 "pure function of (topology, input)",
                             true});
      }
      if (d1_unordered_applies(rel) &&
          (tok.text == "unordered_map" || tok.text == "unordered_set")) {
        findings->push_back({rel, line_no, "D1",
                             "'" + tok.text +
                                 "' in core/solver; iteration order is "
                                 "load-factor-dependent and would leak into "
                                 "plans (use std::map / sorted vector)",
                             true});
      }
    } else if (d1_seeded_applies(rel) && d1_banned_bare(tok.text)) {
      findings->push_back({rel, line_no, "D1",
                           "'" + tok.text +
                               "' in bench/examples; draw randomness from the "
                               "seeded util/rng substreams so every reported "
                               "number replays",
                           true});
    }
    if (!u1_p1_scope(rel)) continue;
    if (tok.text == "value" && call_form && member_access &&
        !u1_allowlisted(rel)) {
      findings->push_back({rel, line_no, "U1",
                           ".value() outside the audited units seam; keep "
                           "quantities typed or extend the allowlist in "
                           "docs/STATIC_ANALYSIS.md tier 7",
                           true});
    }
    if (p1_scorer(tok.text) && call_form && !p1_allowlisted(rel)) {
      findings->push_back({rel, line_no, "P1",
                           "'" + tok.text +
                               "(' outside the audited scorer call sites; "
                               "plans must be scored via the controller / "
                               "resilience path so the PlanChecker audit "
                               "cannot be skipped",
                           true});
    }
  }
}

}  // namespace

void pass_token(const FileScan& scan, std::vector<Finding>* findings) {
  for (std::size_t i = 0; i < scan.lines.size(); ++i) {
    check_line(scan.rel, i + 1, scan.lines[i], findings);
  }
}

}  // namespace palb_analyze
