// lint_baseline.json — the checked-in ledger of known findings
// (schema palb-analyze-baseline-v1):
//
//   {
//     "schema": "palb-analyze-baseline-v1",
//     "entries": [
//       {"path": "src/x/y.cpp", "rule": "U1", "count": 2}
//     ]
//   }
//
// Each entry absorbs up to `count` findings of `rule` in `path`
// without failing the run; a finding beyond the budget gates as
// usual. The ledger must shrink monotonically: capacity left over on
// a full-tree run means the debt was paid off, and rule S2 demands
// the stale entry be deleted so the baseline never masks a
// *reintroduced* instance of a fixed problem.
//
// Parsed with a purpose-built reader for exactly this shape — the
// suite is dependency-free by design, and a hand-rolled general JSON
// parser would be more code than the feature.
#include <cctype>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])) != 0)
      ++pos;
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
  bool string(std::string* out) {
    if (!eat('"')) return false;
    out->clear();
    while (pos < text.size() && text[pos] != '"') {
      if (text[pos] == '\\' && pos + 1 < text.size()) ++pos;
      out->push_back(text[pos++]);
    }
    return eat('"');
  }
  bool number(std::size_t* out) {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[pos])) != 0)
      ++pos;
    if (pos == start) return false;
    *out = static_cast<std::size_t>(std::stoull(text.substr(start, pos - start)));
    return true;
  }
};

std::string json_escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

bool load_baseline(const std::string& file, Baseline* baseline,
                   std::string* error) {
  std::ifstream in(file);
  if (!in) {
    *error = "cannot read baseline: " + file;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  Cursor c{text};

  const auto fail = [&](const std::string& what) {
    *error = file + ": " + what;
    return false;
  };

  if (!c.eat('{')) return fail("expected '{'");
  bool saw_schema = false;
  bool first_key = true;
  while (!c.peek('}')) {
    if (!first_key && !c.eat(',')) return fail("expected ',' between keys");
    first_key = false;
    std::string key;
    if (!c.string(&key) || !c.eat(':')) return fail("expected \"key\":");
    if (key == "schema") {
      std::string schema;
      if (!c.string(&schema)) return fail("schema must be a string");
      if (schema != "palb-analyze-baseline-v1")
        return fail("unsupported schema '" + schema + "'");
      saw_schema = true;
    } else if (key == "entries") {
      if (!c.eat('[')) return fail("entries must be an array");
      bool first_entry = true;
      while (!c.peek(']')) {
        if (!first_entry && !c.eat(',')) return fail("expected ',' in entries");
        first_entry = false;
        if (!c.eat('{')) return fail("entry must be an object");
        BaselineEntry entry;
        bool first_field = true;
        while (!c.peek('}')) {
          if (!first_field && !c.eat(','))
            return fail("expected ',' in entry");
          first_field = false;
          std::string field;
          if (!c.string(&field) || !c.eat(':'))
            return fail("expected \"field\": in entry");
          if (field == "path") {
            if (!c.string(&entry.path)) return fail("path must be a string");
          } else if (field == "rule") {
            if (!c.string(&entry.rule)) return fail("rule must be a string");
          } else if (field == "count") {
            if (!c.number(&entry.count)) return fail("count must be a number");
          } else {
            return fail("unknown entry field '" + field + "'");
          }
        }
        c.eat('}');
        if (entry.path.empty() || entry.rule.empty() || entry.count == 0)
          return fail("entry needs non-empty path, rule and count >= 1");
        baseline->entries.push_back(std::move(entry));
      }
      c.eat(']');
    } else {
      return fail("unknown key '" + key + "'");
    }
  }
  c.eat('}');
  if (!saw_schema) return fail("missing \"schema\" key");
  baseline->loaded = true;
  baseline->path = file;
  return true;
}

bool write_baseline(const std::string& file,
                    const std::vector<Finding>& findings, std::string* error) {
  // Aggregate (path, rule) -> count, in first-seen order (findings
  // arrive path-sorted from the driver, so output is deterministic).
  std::vector<BaselineEntry> entries;
  for (const Finding& f : findings) {
    bool merged = false;
    for (BaselineEntry& e : entries) {
      if (e.path == f.path && e.rule == f.rule) {
        ++e.count;
        merged = true;
        break;
      }
    }
    if (!merged) entries.push_back({f.path, f.rule, 1, 0});
  }

  std::ofstream out(file);
  if (!out) {
    *error = "cannot write baseline: " + file;
    return false;
  }
  out << "{\n  \"schema\": \"palb-analyze-baseline-v1\",\n  \"entries\": [";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    out << "    {\"path\": \"" << json_escape(entries[i].path)
        << "\", \"rule\": \"" << json_escape(entries[i].rule)
        << "\", \"count\": " << entries[i].count << "}";
  }
  out << (entries.empty() ? "]\n}\n" : "\n  ]\n}\n");
  return out.good();
}

}  // namespace palb_analyze
