#pragma once
// palb-analyze — the repo's multi-pass static analysis suite
// (docs/STATIC_ANALYSIS.md tier 7). One shared token-level scanner
// feeds four rule passes:
//
//   token     D1 determinism, U1 units seam, P1 scorer call sites
//             (the original palb-lint rules, unchanged semantics)
//   layering  L1 module-layering DAG over the #include graph, against
//             the declared ranks in tools/palb_analyze/layers.txt
//   lockorder K1 lock-acquisition-order cycles recovered from
//             PALB_ACQUIRED_AFTER/BEFORE declarations, PALB_REQUIRES
//             contracts and nested MutexLock scopes; K2 blocking calls
//             while a designated route-path/publish mutex is held
//   lifecycle P2 PlanHandle::publish* not dominated in-file by a
//             PlanChecker check/repair; P3 direct DispatchPlan
//             mutation outside the audited seams
//
// plus the meta-rules S1 (stale inline suppression) and S2 (stale
// baseline entry) that keep the audit trail honest, and LINT for
// malformed directives.
//
// Deliberately dependency-free (no LLVM, no regex engine): the whole
// point is that it builds and runs on the bare gcc container in
// seconds, as a tier-1 ctest.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace palb_analyze {

struct Finding {
  std::string path;  // repo-relative, forward slashes
  std::size_t line = 0;
  std::string rule;
  std::string message;
  bool gated = true;  // false: reported but not exit-status-affecting
};

struct Comment {
  std::string text;
  std::size_t line = 0;   // line the comment starts on
  bool trailing = false;  // code precedes it on the same line
};

struct Suppression {
  std::string rule;
  std::size_t target_line = 0;   // line the suppression applies to
  std::size_t comment_line = 0;  // line the directive itself is on
  bool used = false;             // matched at least one raw finding
};

struct IncludeDirective {
  std::string header;  // the quoted text, e.g. "core/plan_handle.hpp"
  std::size_t line = 0;
};

struct Token {
  std::string text;
  std::size_t begin = 0;  // offset in the line
};

/// One scanned file: scrubbed code (comments / string literals /
/// char literals blanked, line structure preserved), plus everything
/// the passes consume.
struct FileScan {
  std::string rel;                  // repo-relative, forward slashes
  std::string code;                 // scrubbed, same length as input
  std::vector<std::string> lines;   // scrubbed, split on '\n'
  std::vector<Comment> comments;
  std::vector<Suppression> suppressions;
  std::vector<IncludeDirective> includes;  // #include "..." only
};

// ---------------------------------------------------------------------------
// scanner.cpp — shared lexical core.
// ---------------------------------------------------------------------------

bool is_ident_char(char c);
std::string trim_copy(const std::string& s);

/// Identifier tokens of one scrubbed line (never starts with a digit).
std::vector<Token> identifiers(const std::string& line);

/// True when the first non-space character at/after `pos` is `want`.
bool next_nonspace_is(const std::string& line, std::size_t pos, char want);
/// True when the last non-space character before `pos` is `want`.
bool prev_nonspace_is(const std::string& line, std::size_t pos, char want);

/// Member-access check for a token starting at `begin`: preceded by
/// '.' or '->'.
bool is_member_access(const std::string& line, std::size_t begin);

/// Reads + scrubs one file. Malformed suppression directives become
/// LINT findings; well-formed suppressions land in scan->suppressions.
/// Returns false on I/O error (message on stderr).
bool scan_file(const std::string& path, const std::string& rel,
               FileScan* scan, std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// config.cpp — layers.txt (layer ranks, toplevel dirs, reviewed edge
// exceptions, fast-path mutex designations).
// ---------------------------------------------------------------------------

struct Config {
  bool loaded = false;
  std::string path;  // for messages
  std::map<std::string, int> rank;        // module -> rank (1 = lowest)
  std::vector<std::string> toplevel;      // dirs above all of src/
  // Reviewed exception edges "from -> to" (module names).
  std::set<std::pair<std::string, std::string>> allowed_edges;
  // "component::mutex" designations for rule K2.
  std::set<std::string> fastpath;
};

/// Parses layers.txt. Returns false (with *error filled) on a
/// malformed file — the config is part of the contract, so a parse
/// error is a hard failure, not a skip.
bool load_config(const std::string& file, Config* config, std::string* error);

// ---------------------------------------------------------------------------
// Passes. Token + lifecycle are per-file; layering + lockorder need
// the whole file set (graph rules).
// ---------------------------------------------------------------------------

void pass_token(const FileScan& scan, std::vector<Finding>* findings);

/// `full_src_scan`: at least one scan root was a directory named src —
/// only then is "declared module has no files" a meaningful finding.
void pass_layering(const std::vector<FileScan>& scans, const Config& config,
                   bool full_src_scan, std::vector<Finding>* findings);

void pass_lockorder(const std::vector<FileScan>& scans, const Config& config,
                    std::vector<Finding>* findings);

void pass_lifecycle(const FileScan& scan, std::vector<Finding>* findings);

// ---------------------------------------------------------------------------
// baseline.cpp — checked-in known-findings ledger (lint_baseline.json,
// schema palb-analyze-baseline-v1).
// ---------------------------------------------------------------------------

struct BaselineEntry {
  std::string path;
  std::string rule;
  std::size_t count = 0;
  std::size_t matched = 0;  // findings consumed this run
};

struct Baseline {
  bool loaded = false;
  std::string path;
  std::vector<BaselineEntry> entries;
};

bool load_baseline(const std::string& file, Baseline* baseline,
                   std::string* error);
bool write_baseline(const std::string& file,
                    const std::vector<Finding>& findings, std::string* error);

// ---------------------------------------------------------------------------
// sarif.cpp — SARIF 2.1.0 writer (GitHub code scanning).
// ---------------------------------------------------------------------------

bool write_sarif(const std::string& file, const std::vector<Finding>& findings,
                 std::string* error);

// ---------------------------------------------------------------------------
// gitdiff.cpp — changed-line ranges vs a git ref (--diff-base).
// ---------------------------------------------------------------------------

/// Inclusive [first, last] line ranges of *new-side* lines, keyed by
/// repo-relative path.
using DiffRanges = std::map<std::string, std::vector<std::pair<std::size_t, std::size_t>>>;

/// Runs `git -C root diff --unified=0 ref` and parses the hunk
/// headers. Returns false (with *error filled) when git fails.
bool load_diff_ranges(const std::string& root, const std::string& ref,
                      DiffRanges* ranges, std::string* error);

bool diff_touches(const DiffRanges& ranges, const std::string& rel,
                  std::size_t line);

}  // namespace palb_analyze
