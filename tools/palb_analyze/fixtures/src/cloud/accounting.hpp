// Fixture: shared declarations for the P1 cases. This path
// (src/cloud/accounting.hpp) is on the P1 allowlist — like the real
// accounting.hpp, the scorer declarations live at an audited path, so
// the tokens here must lint clean.
#pragma once

struct Topology {};
struct SlotInput {};
struct DispatchPlan {};
struct SlotMetrics {};

SlotMetrics evaluate_plan(const Topology&, const SlotInput&,
                          const DispatchPlan&);

struct Sim {
  SlotMetrics simulate(const Topology&, const SlotInput&,
                       const DispatchPlan&);
};
