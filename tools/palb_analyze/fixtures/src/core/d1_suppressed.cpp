// Fixture: D1 suppressed case. Both suppression placements — trailing
// on the offending line, and a standalone comment on the line above —
// carry a reason, so the file must lint clean.
#include <random>

// palb-lint: allow(D1) fixture exercising the standalone suppression form
std::mt19937 make_engine() {
  std::random_device seed;  // palb-lint: allow(D1) fixture: trailing suppression form
  return std::mt19937(seed());  // palb-lint: allow(D1) fixture: second trailing suppression
}
