// Fixture for rule S1: the allow() below targets a line that produces
// no D1 finding, so the suppression itself must be flagged as stale.

namespace palb {

int answer() {
  // palb-lint: allow(D1) this used to call rand() before the refactor
  return 42;
}

}  // namespace palb
