// Fixture: P1 negative case. This path (src/core/controller.cpp) is an
// audited scorer call site, so evaluate_plan() here must lint clean.
#include "../cloud/accounting.hpp"

SlotMetrics audited_score(const Topology& topology, const SlotInput& input,
                          const DispatchPlan& plan) {
  return evaluate_plan(topology, input, plan);
}
