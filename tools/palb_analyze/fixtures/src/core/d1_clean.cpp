// Fixture: D1 negative case. Deterministic code in src/core/ — ordered
// containers, no clocks, no PRNGs. Mentions of rand() or time() in
// comments or string literals must NOT fire:
//   std::rand(); std::time(nullptr); std::unordered_map<int, int> m;
#include <map>
#include <string>

int ordered_sum() {
  std::map<int, int> histogram;
  histogram[1] = 2;
  const std::string doc = "policies must not call rand() or time()";
  int sum = static_cast<int>(doc.size());
  for (const auto& [key, count] : histogram) sum += key * count;
  return sum;
}
