// Fixture: D1 suppression-without-reason case. The allow() carries no
// reason, so palb_lint must reject the suppression (LINT finding) AND
// still report the underlying D1 finding.
#include <cstdlib>

int bad_seed() {
  return std::rand();  // palb-lint: allow(D1)
}
