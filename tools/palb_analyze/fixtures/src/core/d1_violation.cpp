// Fixture: D1 positive case. A PRNG, a wall-clock call, and an
// unordered container inside src/core/ — palb_lint must flag all three.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

int jitter_seed() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return std::rand();
}

int bucket_count() {
  std::unordered_map<int, int> histogram;
  histogram[1] = 2;
  return static_cast<int>(histogram.size());
}
