// Fixture: P1 positive case. Scoring a plan via evaluate_plan() and
// simulate() from outside the audited call sites — palb_lint must flag
// both calls.
#include "../cloud/accounting.hpp"

SlotMetrics side_channel_score(Sim& sim, const Topology& topology,
                               const SlotInput& input,
                               const DispatchPlan& plan) {
  evaluate_plan(topology, input, plan);
  return sim.simulate(topology, input, plan);
}
