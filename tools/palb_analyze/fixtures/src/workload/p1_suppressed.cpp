// Fixture: P1 suppressed case. The out-of-band evaluate_plan() call is
// annotated with a reasoned suppression, so the file must lint clean.
#include "../cloud/accounting.hpp"

SlotMetrics debug_score(const Topology& topology, const SlotInput& input,
                        const DispatchPlan& plan) {
  // palb-lint: allow(P1) fixture: diagnostic path, result never reaches a plan
  return evaluate_plan(topology, input, plan);
}
