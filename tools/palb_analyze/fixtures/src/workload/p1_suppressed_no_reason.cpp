// Fixture: P1 suppression-without-reason case. Must be rejected: the
// LINT finding fires and the underlying P1 finding still reports.
#include "../cloud/accounting.hpp"

SlotMetrics unaudited_score(const Topology& topology, const SlotInput& input,
                            const DispatchPlan& plan) {
  return evaluate_plan(topology, input, plan);  // palb-lint: allow(P1)
}
