// Fixture: U1 negative case. This path (src/queueing/mg1.hpp) is on the
// audited units-seam allowlist, so `.value()` here must lint clean.
#pragma once

struct ServiceRate {
  double raw = 0.0;
  double value() const { return raw; }
};

inline double waiting_time_seconds(const ServiceRate& mu) {
  return 1.0 / mu.value();
}
