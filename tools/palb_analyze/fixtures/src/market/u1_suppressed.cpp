// Fixture: U1 suppressed case. The `.value()` escape is annotated with
// a reasoned suppression, so the file must lint clean.
struct Price {
  double raw = 0.0;
  double value() const { return raw; }
};

double audited_boundary(const Price& p) {
  return p.value();  // palb-lint: allow(U1) fixture: serializing to an external ledger format
}
