// Fixture: U1 suppression-without-reason case. Must be rejected: the
// LINT finding fires and the underlying U1 finding still reports.
struct Price {
  double raw = 0.0;
  double value() const { return raw; }
};

double unaudited_boundary(const Price& p) {
  // palb-lint: allow(U1)
  return p.value();
}
