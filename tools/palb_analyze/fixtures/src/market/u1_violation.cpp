// Fixture: U1 positive case. `.value()` on a typed quantity outside the
// audited units seam — palb_lint must flag it.
struct Price {
  double raw = 0.0;
  double value() const { return raw; }
};

double leak_raw_double(const Price& p) {
  return p.value();
}
