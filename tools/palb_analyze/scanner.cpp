// Shared lexical core of palb-analyze: source scrubbing (comments,
// string literals and char literals blanked in place, line structure
// preserved), identifier tokenization, suppression-directive parsing,
// and #include extraction. Every pass consumes the same FileScan, so
// a banned name inside a string or comment can never fire anywhere.
#include <cctype>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim_copy(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::vector<Token> identifiers(const std::string& line) {
  std::vector<Token> out;
  std::size_t i = 0;
  while (i < line.size()) {
    if (is_ident_char(line[i]) &&
        std::isdigit(static_cast<unsigned char>(line[i])) == 0) {
      Token t;
      t.begin = i;
      while (i < line.size() && is_ident_char(line[i])) t.text.push_back(line[i++]);
      out.push_back(std::move(t));
    } else {
      ++i;
    }
  }
  return out;
}

bool next_nonspace_is(const std::string& line, std::size_t pos, char want) {
  while (pos < line.size() &&
         std::isspace(static_cast<unsigned char>(line[pos])) != 0)
    ++pos;
  return pos < line.size() && line[pos] == want;
}

bool prev_nonspace_is(const std::string& line, std::size_t pos, char want) {
  while (pos > 0 &&
         std::isspace(static_cast<unsigned char>(line[pos - 1])) != 0)
    --pos;
  return pos > 0 && line[pos - 1] == want;
}

bool is_member_access(const std::string& line, std::size_t begin) {
  return prev_nonspace_is(line, begin, '.') ||
         (begin >= 2 && line[begin - 1] == '>' && line[begin - 2] == '-');
}

namespace {

struct ScrubResult {
  std::string code;  // same length as input; non-code bytes -> ' '
  std::vector<Comment> comments;
};

ScrubResult scrub(const std::string& in) {
  ScrubResult out;
  out.code.assign(in.size(), ' ');
  std::size_t line = 1;
  bool line_has_code = false;
  std::size_t i = 0;
  const std::size_t n = in.size();

  auto bump_line = [&](char c) {
    if (c == '\n') {
      line += 1;
      line_has_code = false;
    }
  };

  while (i < n) {
    const char c = in[i];
    // Line comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '/') {
      Comment comment;
      comment.line = line;
      comment.trailing = line_has_code;
      i += 2;
      while (i < n && in[i] != '\n') comment.text.push_back(in[i++]);
      out.comments.push_back(std::move(comment));
      continue;  // newline handled by the main loop
    }
    // Block comment.
    if (c == '/' && i + 1 < n && in[i + 1] == '*') {
      Comment comment;
      comment.line = line;
      comment.trailing = line_has_code;
      i += 2;
      while (i + 1 < n && !(in[i] == '*' && in[i + 1] == '/')) {
        comment.text.push_back(in[i]);
        bump_line(in[i]);
        out.code[i] = (in[i] == '\n') ? '\n' : ' ';
        ++i;
      }
      if (i + 1 < n) i += 2;  // consume "*/"
      out.comments.push_back(std::move(comment));
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == '"' && i > 0 && in[i - 1] == 'R' &&
        (i < 2 || !is_ident_char(in[i - 2]))) {
      std::size_t j = i + 1;
      std::string delim;
      while (j < n && in[j] != '(') delim.push_back(in[j++]);
      const std::string closer = ")" + delim + "\"";
      std::size_t end = in.find(closer, j);
      if (end == std::string::npos) end = n;
      const std::size_t stop =
          (end + closer.size() < n) ? end + closer.size() : n;
      for (std::size_t k = i; k < stop; ++k) {
        bump_line(in[k]);
        out.code[k] = (in[k] == '\n') ? '\n' : ' ';
      }
      i = stop;
      line_has_code = true;
      continue;
    }
    // Ordinary string literal.
    if (c == '"') {
      ++i;
      while (i < n && in[i] != '"') {
        if (in[i] == '\\' && i + 1 < n) ++i;
        bump_line(in[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      line_has_code = true;
      continue;
    }
    // Character literal — but not a digit separator (1'000'000) and not
    // part of an identifier (alignof('x') is fine; user-defined suffix
    // separators never follow an identifier char in this codebase).
    if (c == '\'' && (i == 0 || !is_ident_char(in[i - 1]))) {
      ++i;
      while (i < n && in[i] != '\'') {
        if (in[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      line_has_code = true;
      continue;
    }
    // Plain code byte.
    out.code[i] = c;
    if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
    bump_line(c);
    ++i;
  }
  return out;
}

// Parse a suppression directive — the kMarker prefix followed by
// "allow(RULE) reason" — out of comment text. Returns true if the
// comment carries the marker at all (well-formed or not); fills
// either `supp` or `error`.
bool parse_suppression(const Comment& comment, Suppression* supp,
                       std::string* error) {
  static constexpr std::string_view kMarker = "palb-lint:";
  const std::size_t at = comment.text.find(kMarker);
  if (at == std::string::npos) return false;
  const std::string rest = trim_copy(comment.text.substr(at + kMarker.size()));
  static constexpr std::string_view kAllow = "allow(";
  if (rest.rfind(kAllow, 0) != 0) {
    *error = "malformed palb-lint directive; expected 'allow(RULE) reason'";
    return true;
  }
  const std::size_t close = rest.find(')');
  if (close == std::string::npos) {
    *error = "malformed palb-lint directive; missing ')' after rule name";
    return true;
  }
  const std::string rule =
      trim_copy(rest.substr(kAllow.size(), close - kAllow.size()));
  const std::string reason = trim_copy(rest.substr(close + 1));
  if (rule.empty()) {
    *error = "palb-lint suppression names no rule";
    return true;
  }
  if (reason.empty()) {
    *error = "palb-lint suppression of " + rule +
             " has no reason; a reason is required";
    return true;
  }
  supp->rule = rule;
  supp->comment_line = comment.line;
  supp->target_line = comment.trailing ? comment.line : comment.line + 1;
  return true;
}

// #include "..." extraction off one *raw* line (the scrubber blanks
// quoted text, so the header path must come from the unscrubbed file).
void extract_include(const std::string& raw_line, std::size_t line_no,
                     std::vector<IncludeDirective>* includes) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < raw_line.size() &&
           std::isspace(static_cast<unsigned char>(raw_line[i])) != 0)
      ++i;
  };
  skip_ws();
  if (i >= raw_line.size() || raw_line[i] != '#') return;
  ++i;
  skip_ws();
  static constexpr std::string_view kInclude = "include";
  if (raw_line.compare(i, kInclude.size(), kInclude) != 0) return;
  i += kInclude.size();
  skip_ws();
  if (i >= raw_line.size() || raw_line[i] != '"') return;  // <...> skipped
  const std::size_t close = raw_line.find('"', i + 1);
  if (close == std::string::npos) return;
  includes->push_back({raw_line.substr(i + 1, close - i - 1), line_no});
}

}  // namespace

bool scan_file(const std::string& path, const std::string& rel,
               FileScan* scan, std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "palb-analyze: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  scan->rel = rel;
  ScrubResult scrubbed = scrub(text);
  scan->code = std::move(scrubbed.code);
  scan->comments = std::move(scrubbed.comments);

  for (const Comment& comment : scan->comments) {
    Suppression supp;
    std::string error;
    if (!parse_suppression(comment, &supp, &error)) continue;
    if (!error.empty()) {
      findings->push_back({rel, comment.line, "LINT", error, true});
      continue;
    }
    scan->suppressions.push_back(supp);
  }

  {
    std::istringstream lines(scan->code);
    std::string line;
    while (std::getline(lines, line)) scan->lines.push_back(line);
  }
  {
    std::istringstream lines(text);
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(lines, line)) {
      ++line_no;
      extract_include(line, line_no, &scan->includes);
    }
  }
  return true;
}

}  // namespace palb_analyze
