// palb-analyze driver: collects files, runs the shared scanner once,
// dispatches the rule passes, applies suppressions (S1 polices stale
// ones), consumes the baseline ledger (S2 polices stale entries),
// optionally gates only on --diff-base changed lines, and writes
// text / report / SARIF output.
//
// Exit codes: 0 clean, 1 gated findings, 2 usage or I/O error.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "analyze.hpp"

namespace fs = std::filesystem;

namespace palb_analyze {
namespace {

bool scannable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h";
}

// Fixture-ness is judged *below* the scan argument: scanning tools/
// skips tools/palb_analyze/fixtures/, but pointing the tool directly at
// a fixture tree (how the self-gate tests drive it) scans that tree.
bool in_fixture_dir(const fs::path& p, const fs::path& arg) {
  for (const fs::path& part : p.lexically_relative(arg)) {
    if (part == "fixtures") return true;
  }
  return false;
}

void collect(const fs::path& arg, std::vector<fs::path>* files) {
  if (fs::is_directory(arg)) {
    for (const auto& entry : fs::recursive_directory_iterator(arg)) {
      if (entry.is_regular_file() && scannable(entry.path()) &&
          !in_fixture_dir(entry.path(), arg)) {
        files->push_back(entry.path());
      }
    }
  } else {
    // Explicit file arguments are always scanned, fixtures included —
    // that is how the fixture tests drive the tool.
    files->push_back(arg);
  }
}

void print_rules() {
  std::cout
      << "palb-analyze rules (docs/STATIC_ANALYSIS.md tier 7):\n"
      << "token pass (the original palb-lint rules):\n"
      << "  D1  determinism    no rand/srand/random_device/mt19937/"
         "default_random_engine,\n"
      << "                     no sleep_for/sleep_until, no time()/clock() "
         "in plan-affecting\n"
      << "                     dirs (src/core, src/solver, src/cloud, "
         "src/check, src/fault,\n"
      << "                     src/sim, src/forecast, src/serve); "
         "additionally no unordered_map/\n"
      << "                     unordered_set in src/core + src/solver; "
         "bench/ + examples/\n"
      << "                     get the seeded-reproducibility subset "
         "(no ad-hoc PRNG/sleep)\n"
      << "  U1  units-seam     .value() only in the audited boundary files\n"
      << "  P1  plan-scoring   evaluate_plan(/simulate( only at audited "
         "call sites\n"
      << "layering pass (tools/palb_analyze/layers.txt):\n"
      << "  L1  layering       #include edges must follow the declared "
         "module DAG;\n"
      << "                     no upward or same-rank includes, src/ never "
         "includes toplevel\n"
      << "lockorder pass:\n"
      << "  K1  lock-order     the union of declared "
         "(PALB_ACQUIRED_AFTER/BEFORE) and\n"
      << "                     observed (nested MutexLock/.lock()) "
         "acquisition edges must\n"
      << "                     be acyclic\n"
      << "  K2  fast-path      no blocking call (submit/wait/join/sleep/"
         "stream I/O) while\n"
      << "                     a layers.txt-designated fastpath mutex is "
         "held\n"
      << "lifecycle pass:\n"
      << "  P2  publish-audit  member publish(/publish_locked( needs a "
         "PlanChecker\n"
      << "                     check()/repair() earlier in the file\n"
      << "  P3  plan-mutation  DispatchPlan members mutated only in the "
         "audited seams\n"
      << "meta:\n"
      << "  S1  stale-allow    a suppression that matches no finding is "
         "itself a finding\n"
      << "  S2  stale-baseline a baseline entry with unused capacity must "
         "be deleted\n"
      << "suppress with: // palb-lint: allow(RULE) <non-empty reason>\n";
}

void print_usage() {
  std::cout
      << "usage: palb_analyze [options] <files-or-dirs>...\n"
      << "  --root DIR          repo root for relative paths (default: cwd)\n"
      << "  --layers FILE       layering config (default: "
         "<root>/tools/palb_analyze/layers.txt)\n"
      << "  --baseline FILE     known-findings ledger (default: "
         "<root>/tools/palb_analyze/lint_baseline.json if present)\n"
      << "  --write-baseline F  write current findings as a new ledger and "
         "exit 0\n"
      << "  --sarif FILE        write SARIF 2.1.0 (all findings, gated "
         "level=error)\n"
      << "  --diff-base REF     gate only findings on lines changed vs the "
         "git ref\n"
      << "  --report FILE       also write the text output to FILE\n"
      << "  --passes LIST       comma list of token,layering,lockorder,"
         "lifecycle (default all)\n"
      << "  --list-rules        print the rule catalog and exit\n";
}

struct ActiveRules {
  bool token = true;
  bool layering = true;
  bool lockorder = true;
  bool lifecycle = true;

  bool covers(const std::string& rule) const {
    if (rule == "D1" || rule == "U1" || rule == "P1") return token;
    if (rule == "L1") return layering;
    if (rule == "K1" || rule == "K2") return lockorder;
    if (rule == "P2" || rule == "P3") return lifecycle;
    // LINT/S1/S2 always; unknown rule names fall through to "active"
    // so a suppression of a nonexistent rule cannot hide forever.
    return true;
  }
};

bool finding_order(const Finding& a, const Finding& b) {
  if (a.path != b.path) return a.path < b.path;
  if (a.line != b.line) return a.line < b.line;
  return a.rule < b.rule;
}

}  // namespace

int run(int argc, char** argv) {
  fs::path root = fs::current_path();
  std::string layers_path;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string sarif_path;
  std::string diff_base;
  std::string report_path;
  ActiveRules active;
  std::vector<fs::path> args;

  const auto need_value = [&](int i, const char* flag) {
    if (i + 1 >= argc) {
      std::cerr << "palb-analyze: " << flag << " needs a value\n";
      return false;
    }
    return true;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--root") {
      if (!need_value(i, "--root")) return 2;
      root = argv[++i];
    } else if (arg == "--layers") {
      if (!need_value(i, "--layers")) return 2;
      layers_path = argv[++i];
    } else if (arg == "--baseline") {
      if (!need_value(i, "--baseline")) return 2;
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline") {
      if (!need_value(i, "--write-baseline")) return 2;
      write_baseline_path = argv[++i];
    } else if (arg == "--sarif") {
      if (!need_value(i, "--sarif")) return 2;
      sarif_path = argv[++i];
    } else if (arg == "--diff-base") {
      if (!need_value(i, "--diff-base")) return 2;
      diff_base = argv[++i];
    } else if (arg == "--report") {
      if (!need_value(i, "--report")) return 2;
      report_path = argv[++i];
    } else if (arg == "--passes") {
      if (!need_value(i, "--passes")) return 2;
      active = {false, false, false, false};
      std::istringstream list(argv[++i]);
      std::string pass;
      while (std::getline(list, pass, ',')) {
        if (pass == "token") {
          active.token = true;
        } else if (pass == "layering") {
          active.layering = true;
        } else if (pass == "lockorder") {
          active.lockorder = true;
        } else if (pass == "lifecycle") {
          active.lifecycle = true;
        } else {
          std::cerr << "palb-analyze: unknown pass '" << pass << "'\n";
          return 2;
        }
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "palb-analyze: unknown option " << arg << " (try --help)\n";
      return 2;
    } else {
      args.emplace_back(std::string(arg));
    }
  }
  if (args.empty()) {
    std::cerr << "palb-analyze: no files or directories given (try --help)\n";
    return 2;
  }

  // ---- collect ----
  std::vector<fs::path> files;
  bool full_src_scan = false;
  std::vector<std::string> scan_prefixes;  // repo-relative, for S2 scoping
  std::error_code ec;
  const fs::path canon_root = fs::weakly_canonical(root, ec);
  for (const fs::path& arg : args) {
    if (!fs::exists(arg)) {
      std::cerr << "palb-analyze: no such path: " << arg.string() << "\n";
      return 2;
    }
    if (fs::is_directory(arg) && arg.filename().string() == "src")
      full_src_scan = true;
    scan_prefixes.push_back(
        fs::proximate(fs::weakly_canonical(arg, ec), canon_root, ec)
            .generic_string());
    collect(arg, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // ---- config ----
  Config config;
  {
    const bool explicit_layers = !layers_path.empty();
    if (!explicit_layers)
      layers_path = (root / "tools/palb_analyze/layers.txt").string();
    std::string error;
    if (fs::exists(layers_path)) {
      if (!load_config(layers_path, &config, &error)) {
        std::cerr << "palb-analyze: " << error << "\n";
        return 2;
      }
    } else if (explicit_layers) {
      std::cerr << "palb-analyze: cannot read layers file: " << layers_path
                << "\n";
      return 2;
    }
    // No layers file (fixture trees): layering is a no-op, lockorder
    // runs with an empty fastpath set.
  }

  // ---- scan ----
  std::vector<FileScan> scans;
  std::vector<Finding> findings;  // LINT first, then the passes append
  scans.reserve(files.size());
  for (const fs::path& file : files) {
    FileScan scan;
    const std::string rel =
        fs::proximate(fs::weakly_canonical(file, ec), canon_root, ec)
            .generic_string();
    if (!scan_file(file.string(), rel, &scan, &findings)) return 2;
    scans.push_back(std::move(scan));
  }

  // ---- passes ----
  for (const FileScan& scan : scans) {
    if (active.token) pass_token(scan, &findings);
    if (active.lifecycle) pass_lifecycle(scan, &findings);
  }
  if (active.layering) pass_layering(scans, config, full_src_scan, &findings);
  if (active.lockorder) pass_lockorder(scans, config, &findings);

  // ---- suppressions + S1 ----
  {
    std::vector<Finding> kept;
    kept.reserve(findings.size());
    for (Finding& f : findings) {
      bool suppressed = false;
      for (FileScan& scan : scans) {
        if (scan.rel != f.path) continue;
        for (Suppression& s : scan.suppressions) {
          if (s.rule == f.rule && s.target_line == f.line) {
            s.used = true;
            suppressed = true;
          }
        }
      }
      if (suppressed) {
        f.gated = false;  // kept for SARIF visibility, never gates
      }
      kept.push_back(std::move(f));
    }
    findings = std::move(kept);
    for (FileScan& scan : scans) {
      for (Suppression& s : scan.suppressions) {
        if (!s.used && active.covers(s.rule)) {
          findings.push_back(
              {scan.rel, s.comment_line, "S1",
               "stale suppression: allow(" + s.rule +
                   ") matches no finding on its target line; delete the "
                   "directive (or fix the rule name) so the audit trail "
                   "stays honest",
               true});
        }
      }
    }
  }

  std::sort(findings.begin(), findings.end(), finding_order);

  // ---- write-baseline mode ----
  if (!write_baseline_path.empty()) {
    std::vector<Finding> gated;
    for (const Finding& f : findings) {
      if (f.gated) gated.push_back(f);
    }
    std::string error;
    if (!write_baseline(write_baseline_path, gated, &error)) {
      std::cerr << "palb-analyze: " << error << "\n";
      return 2;
    }
    std::cout << "palb-analyze: wrote " << gated.size()
              << " finding(s) to baseline " << write_baseline_path << "\n";
    return 0;
  }

  // ---- baseline consume + S2 ----
  Baseline baseline;
  {
    const bool explicit_baseline = !baseline_path.empty();
    if (!explicit_baseline)
      baseline_path = (root / "tools/palb_analyze/lint_baseline.json").string();
    if (fs::exists(baseline_path)) {
      std::string error;
      if (!load_baseline(baseline_path, &baseline, &error)) {
        std::cerr << "palb-analyze: " << error << "\n";
        return 2;
      }
    } else if (explicit_baseline) {
      std::cerr << "palb-analyze: cannot read baseline: " << baseline_path
                << "\n";
      return 2;
    }
  }
  if (baseline.loaded) {
    const std::string baseline_rel =
        fs::proximate(fs::weakly_canonical(fs::path(baseline_path), ec),
                      canon_root, ec)
            .generic_string();
    for (Finding& f : findings) {
      if (!f.gated) continue;
      for (BaselineEntry& e : baseline.entries) {
        if (e.path == f.path && e.rule == f.rule && e.matched < e.count) {
          ++e.matched;
          f.gated = false;
          break;
        }
      }
    }
    // S2 only on full (non-diff) runs, and only for entries whose path
    // was actually scanned — a tools/-only run must not flag src/ debt.
    if (diff_base.empty()) {
      for (const BaselineEntry& e : baseline.entries) {
        const bool in_scope = [&] {
          for (const std::string& prefix : scan_prefixes) {
            if (e.path == prefix || e.path.rfind(prefix + "/", 0) == 0)
              return true;
          }
          return false;
        }();
        if (in_scope && e.matched < e.count) {
          findings.push_back(
              {baseline_rel, 1, "S2",
               "stale baseline entry: " + e.path + " [" + e.rule +
                   "] budgets " + std::to_string(e.count) +
                   " finding(s) but only " + std::to_string(e.matched) +
                   " remain; shrink or delete the entry so the ledger "
                   "cannot mask a regression",
               true});
        }
      }
      std::sort(findings.begin(), findings.end(), finding_order);
    }
  }

  // ---- diff gating ----
  if (!diff_base.empty()) {
    DiffRanges ranges;
    std::string error;
    if (!load_diff_ranges(root.string(), diff_base, &ranges, &error)) {
      std::cerr << "palb-analyze: " << error << "\n";
      return 2;
    }
    for (Finding& f : findings) {
      if (f.gated && !diff_touches(ranges, f.path, f.line)) f.gated = false;
    }
  }

  // ---- output ----
  std::size_t gated_count = 0;
  std::size_t ungated_count = 0;
  std::ostringstream out;
  for (const Finding& f : findings) {
    if (f.gated) {
      ++gated_count;
      out << f.path << ":" << f.line << ": [" << f.rule << "] " << f.message
          << "\n";
    } else {
      ++ungated_count;
    }
  }
  out << "palb-analyze: " << gated_count << " finding(s) in " << files.size()
      << " file(s) scanned";
  if (ungated_count > 0) {
    out << " (" << ungated_count << " suppressed/baselined";
    if (!diff_base.empty()) out << "/outside the diff vs " << diff_base;
    out << ")";
  }
  out << "\n";
  std::cout << out.str();

  if (!report_path.empty()) {
    std::ofstream report(report_path);
    if (!report) {
      std::cerr << "palb-analyze: cannot write report to " << report_path
                << "\n";
      return 2;
    }
    report << out.str();
  }
  if (!sarif_path.empty()) {
    std::string error;
    if (!write_sarif(sarif_path, findings, &error)) {
      std::cerr << "palb-analyze: " << error << "\n";
      return 2;
    }
  }
  return gated_count == 0 ? 0 : 1;
}

}  // namespace palb_analyze

int main(int argc, char** argv) { return palb_analyze::run(argc, argv); }
