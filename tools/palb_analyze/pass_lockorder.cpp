// Pass B — lock-order analysis (rules K1, K2). Clang's Thread Safety
// Analysis proves per-mutex discipline inside one translation unit but
// cannot see cross-mutex *ordering*; this pass recovers the static
// lock-acquisition graph from three sources and checks it for cycles:
//
//   * declared edges: `Mutex b_ PALB_ACQUIRED_AFTER(a_);` => a_ -> b_
//     (and PALB_ACQUIRED_BEFORE the other way around);
//   * contract edges: a function annotated PALB_REQUIRES(a_) whose
//     inline body acquires b_ => a_ -> b_;
//   * observed edges: a MutexLock / .lock() / .try_lock() acquisition
//     made while an earlier MutexLock scope (or manual lock) is still
//     open => held -> acquired.
//
// Mutex identity is `component::name`, where component is the file-pair
// stem (src/core/plan_handle.{hpp,cpp} -> core/plan_handle), so a
// header's declared order and its .cpp's observed order land on the
// same nodes. A cycle in the union graph — including an observed edge
// contradicting a declared one — is a K1 finding. The walk is
// brace-scoped tokens, not a CFG: an acquisition through a function
// call is invisible, which is exactly why the PALB_ACQUIRED_AFTER
// declarations exist for the cross-function contracts.
//
// K2: while a designated route-path/publish mutex (the `fastpath`
// entries in layers.txt) is held, blocking identifiers — pool submits,
// waits, joins, sleeps, stream I/O — are findings: the serving fast
// path's zero-stall contract (docs/SERVING.md) dies the moment a
// reader-visible lock waits on anything.
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

struct Edge {
  std::string from;  // qualified: component::mutex
  std::string to;
  std::string path;
  std::size_t line = 0;
  bool declared = false;  // from PALB_ACQUIRED_AFTER/BEFORE
};

// Blocking in call position (`submit(...)`, `cv.wait(mu)`, ...).
bool blocking_call(const std::string& name) {
  static const std::set<std::string> kCalls = {
      "submit",     "parallel_collect", "run_replications", "wait",
      "wait_for",   "wait_until",       "join",             "sleep_for",
      "sleep_until", "getline",         "fopen",            "fread",
      "fwrite",     "system",           "popen",            "flush",
  };
  return kCalls.count(name) != 0;
}

// Blocking by mere appearance (constructing a file stream or touching
// a std stream under a fast-path lock is already the bug).
bool blocking_bare(const std::string& name) {
  static const std::set<std::string> kBare = {
      "ifstream", "ofstream", "fstream", "cin", "cout", "cerr", "clog",
  };
  return kBare.count(name) != 0;
}

// src/core/plan_handle.cpp -> core/plan_handle (the .hpp maps to the
// same stem, unifying declared and observed edges of one class).
std::string component_of(const std::string& rel) {
  std::string stem = rel;
  if (stem.rfind("src/", 0) == 0) stem.erase(0, 4);
  const std::size_t dot = stem.rfind('.');
  if (dot != std::string::npos) stem.erase(dot);
  return stem;
}

struct Hold {
  std::string mutex;  // unqualified member name
  int depth = 0;      // brace depth the hold was opened at
  bool manual = false;  // .lock()/.try_lock(), released by .unlock()
};

// One file's contribution: edges into *edges, K2 findings directly.
void scan_file_locks(const FileScan& scan, const Config& config,
                     std::vector<Edge>* edges,
                     std::vector<Finding>* findings) {
  const std::string comp = component_of(scan.rel);
  const auto qual = [&](const std::string& name) { return comp + "::" + name; };
  const std::string& code = scan.code;
  const std::size_t n = code.size();

  std::size_t i = 0;
  std::size_t line = 1;
  int depth = 0;
  std::vector<Hold> holds;
  std::vector<std::string> pending_requires;  // from a signature, until { or ;
  std::string prev_ident;

  // Collect identifier tokens inside the (...) group starting at or
  // after `pos`; advances *out past the closing ')'. Line counter is
  // updated for the consumed span.
  const auto parens_idents = [&](std::size_t pos, std::size_t* out) {
    std::vector<std::string> idents;
    while (pos < n && code[pos] != '(') {
      if (code[pos] == '\n') ++line;
      ++pos;
    }
    int nest = 0;
    while (pos < n) {
      const char c = code[pos];
      if (c == '\n') ++line;
      if (c == '(') ++nest;
      if (c == ')') {
        --nest;
        if (nest == 0) {
          ++pos;
          break;
        }
      }
      if (is_ident_char(c) && !(c >= '0' && c <= '9')) {
        std::string tok;
        while (pos < n && is_ident_char(code[pos])) tok.push_back(code[pos++]);
        idents.push_back(std::move(tok));
        continue;
      }
      ++pos;
    }
    *out = pos;
    return idents;
  };

  const auto add_edges_for_acquire = [&](const std::string& acquired,
                                         std::size_t at_line) {
    std::set<std::string> emitted;
    for (const Hold& h : holds) {
      if (h.mutex == acquired) continue;
      if (!emitted.insert(h.mutex).second) continue;
      edges->push_back({qual(h.mutex), qual(acquired), scan.rel, at_line, false});
    }
  };

  const auto fastpath_held = [&]() -> const Hold* {
    for (const Hold& h : holds) {
      if (config.fastpath.count(qual(h.mutex)) != 0) return &h;
    }
    return nullptr;
  };

  while (i < n) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '{') {
      ++depth;
      // A signature-level PALB_REQUIRES binds to the body that opens
      // here: the required mutexes are held for the whole scope.
      for (const std::string& m : pending_requires)
        holds.push_back({m, depth, false});
      pending_requires.clear();
      ++i;
      continue;
    }
    if (c == '}') {
      --depth;
      while (!holds.empty() && holds.back().depth > depth) holds.pop_back();
      ++i;
      continue;
    }
    if (c == ';') {
      // `PALB_REQUIRES(m);` on a pure declaration: no body, no holds.
      pending_requires.clear();
      ++i;
      continue;
    }
    if (!is_ident_char(c) || (c >= '0' && c <= '9')) {
      ++i;
      continue;
    }

    const std::size_t tok_begin = i;
    std::string tok;
    while (i < n && is_ident_char(code[i])) tok.push_back(code[i++]);

    if (tok == "MutexLock") {
      // MutexLock <var>(<expr>); the mutex is the last identifier in
      // the parens (handles `mu_` and `handle.publish_mutex()` alike).
      std::size_t after = i;
      const std::vector<std::string> idents = parens_idents(i, &after);
      if (!idents.empty()) {
        const std::string mutex = idents.back();
        add_edges_for_acquire(mutex, line);
        holds.push_back({mutex, depth, false});
      }
      i = after;
      prev_ident = tok;
      continue;
    }
    if (tok == "PALB_REQUIRES") {
      std::size_t after = i;
      for (std::string& m : parens_idents(i, &after))
        pending_requires.push_back(std::move(m));
      i = after;
      prev_ident = tok;
      continue;
    }
    if (tok == "PALB_ACQUIRED_AFTER" || tok == "PALB_ACQUIRED_BEFORE") {
      // `Mutex b_ PALB_ACQUIRED_AFTER(a_);` — prev_ident is the mutex
      // being declared, the parens list its predecessors (AFTER) or
      // successors (BEFORE).
      std::size_t after = i;
      const std::vector<std::string> others = parens_idents(i, &after);
      if (!prev_ident.empty()) {
        for (const std::string& other : others) {
          if (tok == "PALB_ACQUIRED_AFTER")
            edges->push_back({qual(other), qual(prev_ident), scan.rel, line, true});
          else
            edges->push_back({qual(prev_ident), qual(other), scan.rel, line, true});
        }
      }
      i = after;
      prev_ident = tok;
      continue;
    }

    const bool call_form = next_nonspace_is(code, i, '(');
    const bool member = is_member_access(code, tok_begin);

    if ((tok == "lock" || tok == "try_lock") && call_form && member &&
        !prev_ident.empty()) {
      add_edges_for_acquire(prev_ident, line);
      holds.push_back({prev_ident, depth, true});
      prev_ident = tok;
      continue;
    }
    if (tok == "unlock" && call_form && member && !prev_ident.empty()) {
      for (std::size_t h = holds.size(); h-- > 0;) {
        if (holds[h].manual && holds[h].mutex == prev_ident) {
          holds.erase(holds.begin() + static_cast<std::ptrdiff_t>(h));
          break;
        }
      }
      prev_ident = tok;
      continue;
    }

    if ((call_form && blocking_call(tok)) || blocking_bare(tok)) {
      if (const Hold* held = fastpath_held()) {
        findings->push_back(
            {scan.rel, line, "K2",
             "blocking '" + tok + "' while fast-path mutex '" + held->mutex +
                 "' is held; the route/publish path must never wait "
                 "(layers.txt fastpath designation, docs/SERVING.md)",
             true});
      }
    }
    prev_ident = tok;
  }
}

// Depth-first cycle search over the union graph; reports each cycle
// once, anchored at its lexicographically smallest node so reruns are
// deterministic.
struct CycleFinder {
  const std::map<std::string, std::vector<const Edge*>>& adj;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<const Edge*> stack;
  std::vector<std::vector<const Edge*>> cycles;

  void dfs(const std::string& node) {
    color[node] = 1;
    const auto it = adj.find(node);
    if (it != adj.end()) {
      for (const Edge* e : it->second) {
        const int c = color.count(e->to) != 0 ? color[e->to] : 0;
        if (c == 1) {
          // Back edge: unwind the stack to the cycle start.
          std::vector<const Edge*> cycle;
          bool in_cycle = false;
          for (const Edge* s : stack) {
            if (s->from == e->to) in_cycle = true;
            if (in_cycle) cycle.push_back(s);
          }
          cycle.push_back(e);
          cycles.push_back(std::move(cycle));
        } else if (c == 0) {
          stack.push_back(e);
          dfs(e->to);
          stack.pop_back();
        }
      }
    }
    color[node] = 2;
  }
};

}  // namespace

void pass_lockorder(const std::vector<FileScan>& scans, const Config& config,
                    std::vector<Finding>* findings) {
  std::vector<Edge> edges;
  for (const FileScan& scan : scans) {
    scan_file_locks(scan, config, &edges, findings);
  }

  // Dedup parallel edges (same from -> to), keeping the first
  // provenance; a declared edge wins so messages cite the contract.
  std::map<std::pair<std::string, std::string>, const Edge*> unique;
  for (const Edge& e : edges) {
    auto [it, inserted] = unique.insert({{e.from, e.to}, &e});
    if (!inserted && e.declared && !it->second->declared) it->second = &e;
  }

  std::map<std::string, std::vector<const Edge*>> adj;
  for (const auto& [key, edge] : unique) {
    (void)key;
    adj[edge->from].push_back(edge);
  }

  CycleFinder finder{adj, {}, {}, {}};
  for (const auto& [node, out] : adj) {
    (void)out;
    if (finder.color.count(node) == 0 || finder.color[node] == 0)
      finder.dfs(node);
  }

  for (const std::vector<const Edge*>& cycle : finder.cycles) {
    std::string path_desc;
    for (const Edge* e : cycle) {
      path_desc += e->from + " -> ";
    }
    path_desc += cycle.back()->to;
    std::string provenance;
    for (const Edge* e : cycle) {
      provenance += "\n    " + e->from + " -> " + e->to + " (" +
                    (e->declared ? "declared at " : "acquired at ") + e->path +
                    ":" + std::to_string(e->line) + ")";
    }
    const Edge* anchor = cycle.back();
    findings->push_back(
        {anchor->path, anchor->line, "K1",
         "lock-order cycle: " + path_desc +
             " — two threads taking these mutexes in the orders shown can "
             "deadlock; fix the acquisition order or the "
             "PALB_ACQUIRED_AFTER declaration" + provenance,
         true});
  }
}

}  // namespace palb_analyze
