// Pass A — module-layering DAG (rule L1). The architecture is a
// ranked DAG declared in tools/palb_analyze/layers.txt: a file in
// module M may include "X/..." only when rank(X) < rank(M) or X == M;
// modules sharing a rank must not include each other (their order
// would be ambiguous); the toplevel dirs (tools/bench/tests/examples)
// sit above all of src/ and may include anything. Because ranks are a
// topological order by construction, enforcing "no upward or
// same-rank edge" is exactly "the include graph restricted to src/ is
// acyclic and respects the declared order" — a cycle would need at
// least one upward edge.
//
// The pass also keeps layers.txt itself honest: a scanned src/ module
// missing from the declaration is a finding, and (on full src/ scans)
// so is a declared module with no files left on disk.
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

// Module of a scanned file: "src/core/x.cpp" -> "core";
// "tools/x.cpp" -> "" (toplevel); fixture trees use the same shapes.
std::string module_of(const std::string& rel, const Config& config,
                      bool* toplevel) {
  *toplevel = false;
  const std::size_t slash = rel.find('/');
  if (slash == std::string::npos) {
    *toplevel = true;  // a root-level file constrains nothing
    return "";
  }
  const std::string first = rel.substr(0, slash);
  if (first == "src") {
    const std::size_t second = rel.find('/', slash + 1);
    if (second == std::string::npos) return "";
    return rel.substr(slash + 1, second - slash - 1);
  }
  for (const std::string& dir : config.toplevel) {
    if (first == dir) {
      *toplevel = true;
      return first;
    }
  }
  return first;  // unknown tree root; treated as an undeclared module
}

// Module of an include directive: "core/plan_handle.hpp" -> "core".
// Same-directory includes ("bench_common.hpp") and relative escapes
// ("../cloud/x.hpp") carry no module claim and are skipped.
std::string include_module(const std::string& header) {
  if (header.empty() || header[0] == '.') return "";
  const std::size_t slash = header.find('/');
  if (slash == std::string::npos) return "";
  return header.substr(0, slash);
}

}  // namespace

void pass_layering(const std::vector<FileScan>& scans, const Config& config,
                   bool full_src_scan, std::vector<Finding>* findings) {
  if (!config.loaded) return;

  std::set<std::string> seen_modules;
  for (const FileScan& scan : scans) {
    bool file_toplevel = false;
    const std::string mod = module_of(scan.rel, config, &file_toplevel);
    if (!file_toplevel && !mod.empty()) seen_modules.insert(mod);

    if (!file_toplevel && !mod.empty() && config.rank.count(mod) == 0) {
      findings->push_back(
          {scan.rel, 1, "L1",
           "module '" + mod + "' is not declared in " + config.path +
               "; every src/ module must have a rank in the layering DAG",
           true});
      continue;  // no rank to compare against
    }

    // tools/bench/tests/examples sit above the whole DAG and may
    // include any module (and each other).
    if (file_toplevel) continue;

    for (const IncludeDirective& inc : scan.includes) {
      const std::string target = include_module(inc.header);
      if (target.empty() || target == mod) continue;
      const bool target_is_toplevel = [&] {
        for (const std::string& dir : config.toplevel)
          if (target == dir) return true;
        return false;
      }();
      if (target_is_toplevel) {
        findings->push_back(
            {scan.rel, inc.line, "L1",
             "src module '" + mod + "' includes toplevel tree '" + target +
                 "/'; the library must not depend on its drivers",
             true});
        continue;
      }
      const auto it = config.rank.find(target);
      if (it == config.rank.end()) continue;  // external quoted include
      if (config.allowed_edges.count({mod, target}) != 0) continue;
      const int own = config.rank.at(mod);
      const int theirs = it->second;
      if (theirs > own) {
        findings->push_back(
            {scan.rel, inc.line, "L1",
             "upward include: module '" + mod + "' (rank " +
                 std::to_string(own) + ") includes '" + inc.header +
                 "' from higher-ranked module '" + target + "' (rank " +
                 std::to_string(theirs) +
                 ") — this inverts the layering DAG in " + config.path,
             true});
      } else if (theirs == own) {
        findings->push_back(
            {scan.rel, inc.line, "L1",
             "same-rank include: modules '" + mod + "' and '" + target +
                 "' share a layer in " + config.path +
                 " and must not depend on each other (order would be "
                 "ambiguous; split the layer or move the shared code down)",
             true});
      }
    }
  }

  if (full_src_scan) {
    for (const auto& [mod, rank] : config.rank) {
      (void)rank;
      if (seen_modules.count(mod) == 0) {
        findings->push_back(
            {config.path, 1, "L1",
             "declared module '" + mod +
                 "' has no files under src/; remove the stale layer entry",
             true});
      }
    }
  }
}

}  // namespace palb_analyze
