// Pass C — plan-lifecycle API misuse (rules P2, P3).
//
//   P2  A member-form `publish(` / `publish_locked(` call that is not
//       preceded, earlier in the same file, by a member-form
//       PlanChecker `check(` or `repair(` call. PlanHandle::publish
//       makes a plan visible to every dispatcher thread at once; the
//       repo's contract (docs/STATIC_ANALYSIS.md tier 7) is that
//       nothing reaches publish without passing the audit path. The
//       in-file dominance heuristic is deliberately coarse — it cannot
//       prove the checked plan is the published one — but it catches
//       the real failure mode: a new call site that never consults the
//       checker at all.
//
//   P3  Direct mutation of DispatchPlan state (`.rate[..] =`,
//       `.share[..] /=`, `.servers_on +=`, mutator calls on `.dc`)
//       outside the audited seams. Policies construct plans, the
//       checker repairs them, the resilience ladder degrades them, the
//       closed-loop sim replays them; everyone else gets a const view.
//       A drive-by mutation after the audit invalidates the
//       PlanChecker certificate silently.
#include <cstddef>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {
namespace {

// Audited mutation seams. Directory-level for the plan factories
// (core policies + JSON loader) and the checker; file-level elsewhere.
bool p3_allowlisted(const std::string& rel) {
  for (const std::string_view dir : {"src/core/", "src/check/"}) {
    if (rel.rfind(dir, 0) == 0) return true;
  }
  for (const std::string_view file :
       {// DispatchPlan's own methods: self-mutation is definitionally
        // inside the type's invariants.
        "src/cloud/plan.cpp", "src/cloud/plan.hpp",
        // Accounting aggregates metrics structs that reuse the plan's
        // field names (servers_on totals, per-class rate rows).
        "src/cloud/accounting.cpp",
        // The degrade ladder zeroes blacked-out routes before repair.
        "src/fault/resilient_controller.cpp",
        // Closed-loop replay derives world-coupled candidate plans.
        "src/sim/closed_loop.cpp"}) {
    if (rel == file) return true;
  }
  return false;
}

bool plan_member(const std::string& name) {
  return name == "rate" || name == "share" || name == "servers_on" ||
         name == "dc";
}

bool mutator_method(const std::string& name) {
  return name == "push_back" || name == "emplace_back" || name == "assign" ||
         name == "clear" || name == "resize" || name == "swap" ||
         name == "erase" || name == "insert";
}

// After a plan member token ends at `pos`, skip any `[...]` subscript
// groups (balanced, possibly several) and trailing spaces; returns the
// index of the first character after them and reports whether any
// subscript was consumed.
std::size_t skip_subscripts(const std::string& line, std::size_t pos,
                            bool* subscripted) {
  *subscripted = false;
  while (true) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size() || line[pos] != '[') return pos;
    *subscripted = true;
    int nest = 0;
    while (pos < line.size()) {
      if (line[pos] == '[') ++nest;
      if (line[pos] == ']') {
        --nest;
        if (nest == 0) {
          ++pos;
          break;
        }
      }
      ++pos;
    }
  }
}

// `=` (not `==`), `+=`, `-=`, `*=`, `/=` at `pos`.
bool assignment_at(const std::string& line, std::size_t pos) {
  if (pos >= line.size()) return false;
  const char c = line[pos];
  if (c == '=') return pos + 1 >= line.size() || line[pos + 1] != '=';
  if ((c == '+' || c == '-' || c == '*' || c == '/') && pos + 1 < line.size())
    return line[pos + 1] == '=';
  return false;
}

// `.push_back(` etc. at `pos`.
bool mutator_call_at(const std::string& line, std::size_t pos) {
  if (pos >= line.size() || line[pos] != '.') return false;
  ++pos;
  std::string name;
  while (pos < line.size() && is_ident_char(line[pos])) name.push_back(line[pos++]);
  return mutator_method(name) && next_nonspace_is(line, pos, '(');
}

}  // namespace

void pass_lifecycle(const FileScan& scan, std::vector<Finding>* findings) {
  const bool p3_exempt = p3_allowlisted(scan.rel);

  // P2 dominance anchor: first member-form check(/repair( call.
  std::size_t guard_line = 0;  // 0 = none seen

  for (std::size_t i = 0; i < scan.lines.size(); ++i) {
    const std::size_t line_no = i + 1;
    const std::string& line = scan.lines[i];
    for (const Token& tok : identifiers(line)) {
      const std::size_t after = tok.begin + tok.text.size();
      const bool call_form = next_nonspace_is(line, after, '(');
      const bool member = is_member_access(line, tok.begin);

      if (member && call_form && (tok.text == "check" || tok.text == "repair")) {
        if (guard_line == 0) guard_line = line_no;
      }

      if (member && call_form &&
          (tok.text == "publish" || tok.text == "publish_locked")) {
        if (guard_line == 0) {
          findings->push_back(
              {scan.rel, line_no, "P2",
               "'" + tok.text +
                   "(' with no PlanChecker check()/repair() call earlier in "
                   "this file; a plan must pass the audit path before it is "
                   "published to the dispatchers",
               true});
        }
      }

      if (!p3_exempt && member && plan_member(tok.text) && !call_form) {
        bool subscripted = false;
        const std::size_t rest = skip_subscripts(line, after, &subscripted);
        // `.dc` alone is too generic a member name (fault events carry a
        // `dc` index); it only counts with a subscript (`plan.dc[l] =`).
        // The distinctive members fire subscripted or not.
        if (tok.text == "dc" && !subscripted) continue;
        if (assignment_at(line, rest) || mutator_call_at(line, rest)) {
          findings->push_back(
              {scan.rel, line_no, "P3",
               "direct mutation of DispatchPlan member '" + tok.text +
                   "' outside the audited seams (policies, checker, degrade "
                   "ladder); mutating a plan after its audit invalidates the "
                   "PlanChecker certificate",
               true});
        }
      }
    }
  }
}

}  // namespace palb_analyze
