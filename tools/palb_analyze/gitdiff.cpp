// --diff-base support: changed-line ranges against a git ref. The
// analyzer still scans and reports the whole tree (a layering cycle
// is a whole-graph property), but with --diff-base only findings on
// new-side changed lines *gate* the exit status — preexisting debt
// stays visible without failing an unrelated PR.
//
// `git diff --unified=0` hunk headers carry exactly what we need:
//   +++ b/<path>
//   @@ -<old> +<start>[,<count>] @@
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analyze.hpp"

namespace palb_analyze {

bool load_diff_ranges(const std::string& root, const std::string& ref,
                      DiffRanges* ranges, std::string* error) {
  const std::string cmd = "git -C '" + root +
                          "' diff --unified=0 --no-color '" + ref +
                          "' -- 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    *error = "cannot run git diff";
    return false;
  }

  std::string output;
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
    output.append(buf, got);
  }
  const int status = pclose(pipe);
  if (status != 0) {
    *error = "git diff against '" + ref + "' failed: " +
             output.substr(0, output.find('\n'));
    return false;
  }

  std::string current;  // path of the file the hunks belong to
  std::size_t pos = 0;
  while (pos < output.size()) {
    std::size_t eol = output.find('\n', pos);
    if (eol == std::string::npos) eol = output.size();
    const std::string line = output.substr(pos, eol - pos);
    pos = eol + 1;

    if (line.rfind("+++ ", 0) == 0) {
      // "+++ b/src/x.cpp" or "+++ /dev/null" (deletion).
      current.clear();
      if (line.rfind("+++ b/", 0) == 0) current = line.substr(6);
      continue;
    }
    if (line.rfind("@@", 0) != 0 || current.empty()) continue;

    // "@@ -a[,b] +start[,count] @@ ..."
    const std::size_t plus = line.find('+');
    if (plus == std::string::npos) continue;
    std::size_t i = plus + 1;
    std::size_t start = 0;
    while (i < line.size() && line[i] >= '0' && line[i] <= '9')
      start = start * 10 + static_cast<std::size_t>(line[i++] - '0');
    std::size_t count = 1;
    if (i < line.size() && line[i] == ',') {
      ++i;
      count = 0;
      while (i < line.size() && line[i] >= '0' && line[i] <= '9')
        count = count * 10 + static_cast<std::size_t>(line[i++] - '0');
    }
    if (count == 0) continue;  // pure deletion: no new-side lines
    (*ranges)[current].push_back({start, start + count - 1});
  }
  return true;
}

bool diff_touches(const DiffRanges& ranges, const std::string& rel,
                  std::size_t line) {
  const auto it = ranges.find(rel);
  if (it == ranges.end()) return false;
  for (const auto& [first, last] : it->second) {
    if (line >= first && line <= last) return true;
  }
  return false;
}

}  // namespace palb_analyze
