#include "bench_json.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace palb::benchjson {

namespace {
/// Solver counters are uint64 but JSON numbers are doubles. On LP64 the
/// implicit route happens to hit the size_t constructor; spell the cast
/// out and refuse counts past 2^53, where a double silently drops bits.
Json counter(std::uint64_t n) {
  constexpr std::uint64_t kMaxExactDouble = 1ull << 53;
  PALB_REQUIRE(n <= kMaxExactDouble,
               "solver counter exceeds the exactly-representable "
               "double range");
  return Json(static_cast<double>(n));
}
}  // namespace

Json to_json(const WorkloadResult& w) {
  Json solver = Json::object();
  solver.set("profiles_examined", counter(w.solver.profiles_examined));
  solver.set("profiles_pruned", counter(w.solver.profiles_pruned));
  solver.set("lp_iterations", counter(w.solver.lp_iterations));
  // Alias of lp_iterations under the name regression tooling keys on:
  // every LP iteration is one simplex pivot (bound flips included).
  solver.set("simplex_pivots", counter(w.solver.lp_iterations));
  solver.set("phase1_skips", counter(w.solver.phase1_skips));
  solver.set("basis_warm_hits", counter(w.solver.basis_warm_hits));
  solver.set("sparse_price_skips", counter(w.solver.sparse_price_skips));
  solver.set("master_iterations", counter(w.solver.master_iterations));
  solver.set("subproblem_solves", counter(w.solver.subproblem_solves));
  solver.set("nlp_iterations", counter(w.solver.nlp_iterations));
  solver.set("warm_start_hits", counter(w.solver.warm_start_hits));
  solver.set("warm_start_misses", counter(w.solver.warm_start_misses));
  solver.set("cache_hit_rate", Json(w.solver.cache_hit_rate()));

  Json doc = Json::object();
  doc.set("name", Json(w.name));
  doc.set("scenario", Json(w.scenario));
  doc.set("slots", Json(w.slots));
  doc.set("workers", Json(w.workers));
  doc.set("serial_ms", Json(w.serial_ms));
  doc.set("parallel_ms", Json(w.parallel_ms));
  doc.set("slots_per_sec", Json(w.slots_per_sec()));
  doc.set("speedup", Json(w.speedup()));
  doc.set("plans_identical", Json(w.plans_identical));
  doc.set("faulted_slots", Json(w.faulted_slots));
  doc.set("repairs", Json(w.repairs));
  Json rungs = Json::array();
  for (const int r : w.fallback_rungs) rungs.push_back(Json(r));
  doc.set("fallback_rungs", std::move(rungs));
  doc.set("solver", std::move(solver));
  return doc;
}

Json to_json(const QpsResult& q) {
  Json doc = Json::object();
  doc.set("schema", Json(kQpsSchema));
  doc.set("scenario", Json(q.scenario));
  doc.set("slots", Json(q.slots));
  doc.set("threads", Json(q.threads));
  doc.set("requests", counter(q.requests));
  doc.set("routed", counter(q.routed));
  doc.set("no_route", counter(q.no_route));
  doc.set("elapsed_seconds", Json(q.elapsed_seconds));
  doc.set("qps", Json(q.qps));
  doc.set("p50_ns", Json(q.p50_ns));
  doc.set("p90_ns", Json(q.p90_ns));
  doc.set("p99_ns", Json(q.p99_ns));
  doc.set("p999_ns", Json(q.p999_ns));
  doc.set("max_ns", Json(q.max_ns));
  doc.set("latency_samples", counter(q.latency_samples));
  doc.set("min_plan_version", counter(q.min_plan_version));
  doc.set("max_plan_version", counter(q.max_plan_version));
  doc.set("rebuilds", counter(q.rebuilds));
  doc.set("refresh_skips", counter(q.refresh_skips));
  doc.set("stalled_routes", counter(q.stalled_routes));
  doc.set("identical_across_threads", Json(q.identical_across_threads));
  doc.set("shed_requests", counter(q.shed_requests));
  doc.set("retry_count", counter(q.retry_count));
  doc.set("stale_plan_ns", counter(q.stale_plan_ns));
  return doc;
}

Json to_json(const ChaosResult& c) {
  Json doc = Json::object();
  doc.set("schema", Json(kChaosSchema));
  doc.set("scenario", Json(c.scenario));
  doc.set("schedule", Json(c.schedule));
  doc.set("slots", Json(c.slots));
  doc.set("faulted_slots", Json(c.faulted_slots));
  doc.set("stalled_solves", Json(c.stalled_solves));
  doc.set("delayed_publishes", Json(c.delayed_publishes));
  doc.set("ttl_escalations", Json(c.ttl_escalations));
  Json rungs = Json::array();
  for (const int r : c.fallback_rungs) rungs.push_back(Json(r));
  doc.set("fallback_rungs", std::move(rungs));
  doc.set("requests", counter(c.requests));
  doc.set("routed", counter(c.routed));
  doc.set("no_route", counter(c.no_route));
  doc.set("shed", counter(c.shed));
  doc.set("shed_fraction", Json(c.shed_fraction));
  doc.set("max_stale_slots", Json(c.max_stale_slots));
  doc.set("mean_stale_slots", Json(c.mean_stale_slots));
  doc.set("stale_plan_ttl_slots", Json(c.stale_plan_ttl_slots));
  doc.set("stalled_routes", counter(c.stalled_routes));
  doc.set("decisions_identical", Json(c.decisions_identical));
  Json threads = Json::array();
  for (const std::size_t t : c.thread_counts) threads.push_back(Json(t));
  doc.set("thread_counts", std::move(threads));
  doc.set("timed_qps", Json(c.timed_qps));
  doc.set("p50_ns", Json(c.p50_ns));
  doc.set("p99_ns", Json(c.p99_ns));
  doc.set("p999_ns", Json(c.p999_ns));
  doc.set("max_ns", Json(c.max_ns));
  doc.set("latency_samples", counter(c.latency_samples));
  return doc;
}

Json with_section(const std::string& path, const std::string& key,
                  Json section) {
  Json doc = Json::object();
  std::ifstream is(path);
  if (is) {
    std::ostringstream buffer;
    buffer << is.rdbuf();
    try {
      Json existing = Json::parse(buffer.str());
      if (existing.is_object()) doc = std::move(existing);
    } catch (const std::exception&) {
      // An unparseable report is replaced wholesale, never appended to.
    }
  }
  if (!doc.contains("schema")) doc.set("schema", Json(kSchema));
  doc.set(key, std::move(section));
  return doc;
}

Json with_qps_section(const std::string& path, const QpsResult& q) {
  return with_section(path, "qps", to_json(q));
}

Json with_chaos_section(const std::string& path, const ChaosResult& c) {
  return with_section(path, "chaos", to_json(c));
}

Json document(std::size_t hardware_concurrency, std::size_t workers,
              bool smoke, const std::vector<WorkloadResult>& workloads) {
  Json list = Json::array();
  for (const auto& w : workloads) list.push_back(to_json(w));
  Json doc = Json::object();
  doc.set("schema", Json(kSchema));
  doc.set("hardware_concurrency", Json(hardware_concurrency));
  doc.set("workers", Json(workers));
  doc.set("smoke", Json(smoke));
  doc.set("workloads", std::move(list));
  return doc;
}

void write_file(const std::string& path, const Json& doc) {
  {
    std::ofstream os(path);
    if (!os) throw IoError("cannot open " + path);
    os << doc.dump(2) << "\n";
    if (!os) throw IoError("failed writing " + path);
  }
  std::ifstream is(path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const Json reread = Json::parse(buffer.str());
  if (!(reread == doc)) {
    throw IoError("bench report round-trip mismatch for " + path);
  }
}

}  // namespace palb::benchjson
