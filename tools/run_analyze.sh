#!/bin/sh
# clang static analyzer (scan-build) entry point shared by CI and local
# runs (docs/STATIC_ANALYSIS.md tier 4).
#
# Environment:
#   SCAN_BUILD  scan-build binary to use (default: first found on PATH)
#   BUILD_DIR   analyzer build dir (default: build-analyze)
#
# --status-bugs makes scan-build exit non-zero when it reports anything;
# known-acceptable reports are filtered through the checked-in
# tools/analyze_suppressions.txt (one substring per line, '#' comments)
# so a finding can only be silenced by a reviewed commit to that file.
#
# If no scan-build is installed the script *skips* (exit 0) so the
# tier-1 flow works on gcc-only boxes; set PALB_ANALYZE_REQUIRED=1 (CI
# does) to turn a missing binary into a hard failure.
set -eu

cd "$(dirname "$0")/.."

SCAN="${SCAN_BUILD:-}"
if [ -z "$SCAN" ]; then
  for candidate in scan-build scan-build-19 scan-build-18 scan-build-17 \
                   scan-build-16 scan-build-15 scan-build-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      SCAN="$candidate"
      break
    fi
  done
fi
if [ -z "$SCAN" ]; then
  if [ "${PALB_ANALYZE_REQUIRED:-0}" = "1" ]; then
    echo "run_analyze: no scan-build found and PALB_ANALYZE_REQUIRED=1;" \
         "failing" >&2
    exit 1
  fi
  echo "run_analyze: no scan-build found; skipping (install clang-tools" \
       "or set SCAN_BUILD=/path/to/scan-build)" >&2
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build-analyze}"
LOG="$BUILD_DIR/scan-build.log"

rm -rf "$BUILD_DIR"
"$SCAN" --status-bugs cmake -B "$BUILD_DIR" -S . \
        -DPALB_BUILD_BENCH=OFF \
        -DPALB_BUILD_EXAMPLES=OFF >/dev/null
mkdir -p "$BUILD_DIR"

status=0
"$SCAN" --status-bugs -o "$BUILD_DIR/scan-results" \
        cmake --build "$BUILD_DIR" -j "$(nproc)" 2>&1 | tee "$LOG" || status=$?

# Every suppression pattern must still match a current warning: a
# stale entry means the underlying finding was fixed, and leaving the
# pattern around could silently absorb a future regression. Mirrors
# palb_analyze's S1/S2 rules for its own suppressions and baseline.
stale=$(while IFS= read -r pattern; do
  case "$pattern" in ''|'#'*) continue ;; esac
  if ! grep ': warning:' "$LOG" | grep -qF "$pattern"; then
    printf '%s\n' "$pattern"
  fi
done < tools/analyze_suppressions.txt)

if [ -n "$stale" ]; then
  echo "run_analyze: stale suppression pattern(s) in" \
       "tools/analyze_suppressions.txt (no current warning matches;" \
       "delete them):" >&2
  printf '%s\n' "$stale" >&2
  exit 1
fi

if [ "$status" -eq 0 ]; then
  echo "run_analyze: clean" >&2
  exit 0
fi

# Non-zero: check whether every reported bug line matches a reviewed
# suppression. scan-build bug lines look like "path:line:col: warning: ...".
unsuppressed=$(grep ': warning:' "$LOG" | while IFS= read -r line; do
  matched=0
  while IFS= read -r pattern; do
    case "$pattern" in ''|'#'*) continue ;; esac
    case "$line" in *"$pattern"*) matched=1; break ;; esac
  done < tools/analyze_suppressions.txt
  [ "$matched" -eq 0 ] && printf '%s\n' "$line"
done)

if [ -n "$unsuppressed" ]; then
  echo "run_analyze: unsuppressed analyzer findings:" >&2
  printf '%s\n' "$unsuppressed" >&2
  exit 1
fi
echo "run_analyze: all findings matched tools/analyze_suppressions.txt" >&2
exit 0
