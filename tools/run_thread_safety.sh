#!/bin/sh
# Thread-safety analysis entry point shared by CI and local runs
# (docs/STATIC_ANALYSIS.md tier 5). Two steps:
#
#   1. Build src/ under clang with PALB_THREAD_SAFETY=ON — every
#      -Wthread-safety diagnostic is an error.
#   2. Run the negative-compilation harness
#      (tests/compile_fail/thread_safety_harness) — every fail_ts_* case
#      must be rejected, the pass_ts_* control must compile.
#
# Environment:
#   CLANG_CXX   clang++ binary to use (default: first found on PATH)
#   BUILD_DIR   build dir for step 1 (default: build-thread-safety)
#
# If no clang is installed the script *skips* (exit 0) so the tier-1
# flow works on gcc-only boxes; set PALB_THREAD_SAFETY_REQUIRED=1 (CI
# does) to turn a missing compiler into a hard failure, so the job can
# never green out by silently not running.
set -eu

cd "$(dirname "$0")/.."

CXX="${CLANG_CXX:-}"
if [ -z "$CXX" ]; then
  for candidate in clang++ clang++-19 clang++-18 clang++-17 clang++-16 \
                   clang++-15 clang++-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      CXX="$candidate"
      break
    fi
  done
fi
if [ -z "$CXX" ]; then
  if [ "${PALB_THREAD_SAFETY_REQUIRED:-0}" = "1" ]; then
    echo "run_thread_safety: no clang++ found and" \
         "PALB_THREAD_SAFETY_REQUIRED=1; failing" >&2
    exit 1
  fi
  echo "run_thread_safety: no clang++ found; skipping (install clang or" \
       "set CLANG_CXX=/path/to/clang++)" >&2
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build-thread-safety}"

echo "run_thread_safety: building src/ with $CXX -Wthread-safety" >&2
cmake -B "$BUILD_DIR" -S . \
      -DCMAKE_CXX_COMPILER="$CXX" \
      -DPALB_THREAD_SAFETY=ON \
      -DPALB_BUILD_BENCH=OFF \
      -DPALB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "run_thread_safety: negative-compilation harness" >&2
rm -rf "$BUILD_DIR/thread-safety-harness-run"
cmake -S tests/compile_fail/thread_safety_harness \
      -B "$BUILD_DIR/thread-safety-harness-run" \
      -DPALB_SOURCE_DIR="$(pwd)" \
      -DCMAKE_CXX_COMPILER="$CXX"

echo "run_thread_safety: clean" >&2
