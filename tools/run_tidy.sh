#!/bin/sh
# Single clang-tidy entry point shared by CI and local runs.
#
#   tools/run_tidy.sh [extra clang-tidy args...]
#
# Environment:
#   CLANG_TIDY  clang-tidy binary to use (default: first found on PATH)
#   BUILD_DIR   compile-commands build dir (default: build-tidy)
#
# Behavior mirrors the PALB_CLANG_TIDY CMake option: if no clang-tidy is
# installed the script *skips* (exit 0) instead of failing, so the tier-1
# flow works on gcc-only boxes. Set PALB_TIDY_REQUIRED=1 to turn a
# missing binary into a hard failure — CI sets it, so the tidy job can
# never green out by silently not running. Warnings are errors: a clean
# run prints nothing.
set -eu

cd "$(dirname "$0")/.."

TIDY="${CLANG_TIDY:-}"
if [ -z "$TIDY" ]; then
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15 clang-tidy-14; do
    if command -v "$candidate" >/dev/null 2>&1; then
      TIDY="$candidate"
      break
    fi
  done
fi
if [ -z "$TIDY" ]; then
  if [ "${PALB_TIDY_REQUIRED:-0}" = "1" ]; then
    echo "run_tidy: no clang-tidy binary found and PALB_TIDY_REQUIRED=1;" \
         "failing" >&2
    exit 1
  fi
  echo "run_tidy: no clang-tidy binary found; skipping (install clang-tidy" \
       "or set CLANG_TIDY=/path/to/clang-tidy)" >&2
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build-tidy}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  # Bench/examples are out of tidy scope; skipping them keeps the
  # compilation database small and avoids requiring google-benchmark.
  cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DPALB_BUILD_BENCH=OFF \
        -DPALB_BUILD_EXAMPLES=OFF >/dev/null
fi

# Library sources only — the same scope the PALB_CLANG_TIDY build option
# applies (src/CMakeLists.txt). Tests and tools link against these.
files=$(find src -name '*.cpp' | sort)

echo "run_tidy: $TIDY over $(echo "$files" | wc -l) files" >&2
# shellcheck disable=SC2086
exec "$TIDY" -p "$BUILD_DIR" --warnings-as-errors='*' --quiet "$@" $files
