// palb — command-line driver for the profit-aware load-balancing library.
//
//   palb scenarios                         list the built-in scenarios
//   palb export <scenario> <file.json>     dump a built-in scenario to JSON
//   palb run <scenario|file.json> [opts]   run policies over a scenario
//       --slots N        number of control slots (default: trace length)
//       --first N        first slot index (default 0)
//       --policy NAME    optimized | balanced | bigm | all (default all)
//       --csv FILE       also write the per-slot ledger as CSV
//   palb simulate <scenario|file.json> [--slots N] [--seed S]
//       plan with Optimized, then stochastically replay each slot and
//       report analytic-vs-simulated profit
//   palb forecast <scenario|file.json> [--model M] [--inflation X]
//       causal operation: plan from forecasts, settle against reality
//   palb replay <scenario|file.json> <plans.json>
//       audit stored plans against a scenario
//   palb check-plan <scenario|file.json> <plans.json> [--tol X] [--no-deadline]
//       verify stored plans against the paper's constraint system
//       (Eq. 6/7/8, stability, rate sanity); exit 1 on any violation
//   palb inject <scenario|file.json> <canned|random:SEED|faults.json>
//       [--slots N] [--policy optimized|balanced] [--workers N]
//       drive the policy through the fault schedule behind the
//       ResilientController and print the per-slot rung/profit table
//       (docs/RESILIENCE.md), plus the shed-all baseline and what the
//       *unwrapped* policy would have done with the same faults
//   palb bench [--smoke] [--out FILE] [--workers N] [--min-speedup X]
//       time the parallel slot pipeline against the 1-worker baseline
//       and write a machine-readable palb-bench-v1 report
//       (BENCH_palb.json by default); exit 1 if any workload's plans
//       diverge or the fig06 workload misses --min-speedup
//   palb qps [scenario] [--threads N] [--seconds X] [--slots N] [--seed S]
//       [--policy optimized|balanced] [--out FILE] [--min-qps X]
//       [--admission]
//       drive the online dispatcher (src/serve/): solve the scenario
//       asynchronously, hot-swap plans into the routing tables, and
//       hammer route() from N closed-loop driver threads; reports
//       sustained routing decisions/sec, p50/p99/p999 latency and
//       plan-swap stalls into a palb-qps-v1 section of the bench
//       report; exit 1 when decisions differ across thread counts,
//       any route stalled on a swap, or throughput misses --min-qps.
//       --admission puts the AdmissionController in front of routing
//       (docs/OVERLOAD.md) and reports shed counts
//   palb chaos [scenario] [schedule] [--slots N] [--workers N]
//       [--policy optimized|balanced] [--requests N] [--ttl N] [--seed S]
//       [--out FILE] [--max-shed X] [--timed X]
//       the overload-hardening gate (docs/OVERLOAD.md): run the
//       ResilientController through a fault schedule with planner
//       stalls, publish delays and demand surges, then replay the
//       admission-gated fast path slot by slot; reports shed fraction,
//       stale-plan exposure and ladder usage into a palb-chaos-v1
//       section; exit 1 when any route stalled, decisions differ
//       across driver thread counts, staleness exceeds the TTL, or
//       shed fraction exceeds --max-shed. Default schedule:
//       canned-chaos
//
// Built-in scenario names: basic-low, basic-high, worldcup, google;
// "random:SEED" generates a deterministic random world.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <future>
#include <sstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "check/plan_checker.hpp"
#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_json.hpp"
#include "core/scenario_gen.hpp"
#include "core/scenario_json.hpp"
#include "fault/fault.hpp"
#include "fault/fault_json.hpp"
#include "fault/resilient_controller.hpp"
#include "forecast/forecasting_controller.hpp"
#include "serve/admission.hpp"
#include "serve/async_planner.hpp"
#include "serve/chaos.hpp"
#include "serve/dispatcher.hpp"
#include "serve/load_driver.hpp"
#include "sim/slot_simulator.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  palb scenarios\n"
               "  palb export <scenario> <file.json>\n"
               "  palb run <scenario|file.json> [--slots N] [--first N] "
               "[--policy optimized|balanced|bigm|all] [--csv FILE] [--plans FILE]\n"
               "  palb simulate <scenario|file.json> [--slots N] [--seed S]\n"
               "  palb forecast <scenario|file.json> [--model naive|ewma|seasonal|kalman] [--inflation X] [--slots N] [--first N]\n"
               "  palb replay <scenario|file.json> <plans.json>\n"
               "  palb check-plan <scenario|file.json> <plans.json> "
               "[--tol X] [--no-deadline]\n"
               "  palb inject <scenario|file.json> "
               "<canned|random:SEED|faults.json> [--slots N] "
               "[--policy optimized|balanced] [--workers N]\n"
               "  palb bench [--smoke] [--out FILE] [--workers N] "
               "[--min-speedup X]\n"
               "  palb qps [scenario] [--threads N] [--seconds X] "
               "[--slots N] [--seed S] [--policy optimized|balanced] "
               "[--out FILE] [--min-qps X] [--admission]\n"
               "  palb chaos [scenario] [schedule] [--slots N] "
               "[--workers N] [--policy optimized|balanced] [--requests N] "
               "[--ttl N] [--seed S] [--out FILE] [--max-shed X] "
               "[--timed X]\n"
               "built-ins: basic-low basic-high worldcup google; also random:SEED\n");
  return 2;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Scenario resolve_scenario(const std::string& name) {
  if (name == "basic-low") {
    return paper::basic_synthetic(paper::ArrivalSet::kLow);
  }
  if (name == "basic-high") {
    return paper::basic_synthetic(paper::ArrivalSet::kHigh);
  }
  if (name == "worldcup") return paper::worldcup_study();
  if (name == "google") return paper::google_study();
  if (ends_with(name, ".json")) return scenario_json::load(name);
  if (name.rfind("random:", 0) == 0) {
    return scenario_gen::generate(std::stoull(name.substr(7)));
  }
  throw InvalidArgument("unknown scenario '" + name +
                        "' (not a built-in, not random:SEED, not a .json "
                        "file)");
}

std::size_t default_slots(const Scenario& sc) {
  std::size_t slots = sc.arrivals.front().front().slots();
  for (const auto& row : sc.arrivals) {
    for (const auto& trace : row) slots = std::min(slots, trace.slots());
  }
  return slots;
}

struct Args {
  std::map<std::string, std::string> options;
  std::vector<std::string> positional;
};

Args parse_args(int argc, char** argv, int first) {
  // Valueless switches; everything else starting with "--" takes the
  // next argument as its value.
  static const std::vector<std::string> kFlags = {"no-deadline", "smoke",
                                                  "admission"};
  Args args;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (std::find(kFlags.begin(), kFlags.end(), key) != kFlags.end()) {
        args.options[key] = "1";
        continue;
      }
      if (i + 1 >= argc) throw InvalidArgument("missing value for " + arg);
      args.options[key] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

int cmd_scenarios() {
  TextTable t({"name", "classes", "front-ends", "data centers", "slots"});
  for (const char* name :
       {"basic-low", "basic-high", "worldcup", "google"}) {
    const Scenario sc = resolve_scenario(name);
    t.add_row({name, std::to_string(sc.topology.num_classes()),
               std::to_string(sc.topology.num_frontends()),
               std::to_string(sc.topology.num_datacenters()),
               std::to_string(default_slots(sc))});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_export(const std::string& name, const std::string& path) {
  scenario_json::save(resolve_scenario(name), path);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void write_csv(const std::string& path, const Scenario& sc,
               const std::map<std::string, RunResult>& runs,
               std::size_t slots) {
  CsvTable csv({"slot", "policy", "revenue", "energy_cost", "transfer_cost",
                "penalty_cost", "net_profit", "servers_on",
                "completed_fraction"});
  for (const auto& [policy, run] : runs) {
    for (std::size_t t = 0; t < slots; ++t) {
      const SlotMetrics& m = run.slots[t];
      csv.add_row({std::to_string(t), policy, format_double(m.revenue, 6),
                   format_double(m.energy_cost, 6),
                   format_double(m.transfer_cost, 6),
                   format_double(m.penalty_cost, 6),
                   format_double(m.net_profit(), 6),
                   std::to_string(m.servers_on),
                   format_double(m.completed_fraction(), 6)});
    }
  }
  csv.write_file(path);
  (void)sc;
}

int cmd_run(const Args& args) {
  if (args.positional.empty()) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : default_slots(sc);
  const std::size_t first =
      args.options.count("first")
          ? static_cast<std::size_t>(std::stoul(args.options.at("first")))
          : 0;
  const std::string which = args.options.count("policy")
                                ? args.options.at("policy")
                                : std::string("all");

  const SlotController controller(sc);
  std::map<std::string, RunResult> runs;
  if (which == "optimized" || which == "all") {
    OptimizedPolicy policy;
    runs["Optimized"] = controller.run(policy, slots, first);
  }
  if (which == "balanced" || which == "all") {
    BalancedPolicy policy;
    runs["Balanced"] = controller.run(policy, slots, first);
  }
  if (which == "bigm" || which == "all") {
    BigMNlpPolicy::Options opt;
    opt.multistarts = 3;
    opt.nlp.max_outer = 15;
    opt.nlp.max_inner = 120;
    BigMNlpPolicy policy(opt);
    runs["BigM-NLP"] = controller.run(policy, slots, first);
  }
  if (runs.empty()) return usage();

  TextTable t({"policy", "revenue $", "energy $", "transfer $",
               "net profit $", "completed %"});
  for (const auto& [name, run] : runs) {
    t.add_row({name, format_double(run.total.revenue, 2),
               format_double(run.total.energy_cost, 2),
               format_double(run.total.transfer_cost, 2),
               format_double(run.total.net_profit(), 2),
               format_double(100.0 * run.total.completed_fraction(), 2)});
  }
  std::printf("%zu slot(s) starting at %zu\n%s", slots, first,
              t.render().c_str());

  if (args.options.count("csv")) {
    write_csv(args.options.at("csv"), sc, runs, slots);
    std::printf("per-slot ledger written to %s\n",
                args.options.at("csv").c_str());
  }
  if (args.options.count("plans")) {
    Json doc = Json::object();
    for (const auto& [name, run] : runs) {
      doc.set(name, plan_json::run_to_json(run));
    }
    std::ofstream os(args.options.at("plans"));
    if (!os) throw IoError("cannot open " + args.options.at("plans"));
    os << doc.dump(2) << "\n";
    std::printf("per-slot plans written to %s\n",
                args.options.at("plans").c_str());
  }
  return 0;
}

int cmd_replay(const Args& args) {
  // Audit stored plans against a scenario: read a --plans export, apply
  // each slot's plan verbatim, and re-settle the ledger.
  if (args.positional.size() != 2) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  std::ifstream is(args.positional[1]);
  if (!is) throw IoError("cannot open " + args.positional[1]);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const Json doc = Json::parse(buffer.str());

  TextTable t({"policy", "slots", "net profit $", "completed %"});
  for (const auto& [policy_name, run_doc] : doc.as_object()) {
    const Json& slots = run_doc.at("slots");
    double profit = 0.0, offered = 0.0, completed = 0.0;
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::size_t slot = slots[i].at("slot").as_index();
      const SlotInput input = sc.slot_input(slot);
      const DispatchPlan plan =
          plan_json::from_json(slots[i].at("plan"), sc.topology);
      const SlotMetrics m = evaluate_plan(sc.topology, input, plan);
      profit += m.net_profit();
      offered += m.offered_requests;
      completed += m.completed_requests;
    }
    t.add_row({policy_name, std::to_string(slots.size()),
               format_double(profit, 2),
               format_double(100.0 * completed / std::max(1.0, offered),
                             2)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}

int cmd_check_plan(const Args& args) {
  // Audit stored plans against the paper's constraint system (Eq. 6/7/8,
  // stability, rate sanity). Reads the same {policy: {slots: [...]}}
  // document `palb run --plans` writes. Exits 0 iff every plan is clean.
  if (args.positional.size() != 2) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  std::ifstream is(args.positional[1]);
  if (!is) throw IoError("cannot open " + args.positional[1]);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const Json doc = Json::parse(buffer.str());

  PlanChecker::Options opt;
  if (args.options.count("tol")) opt.tol = std::stod(args.options.at("tol"));
  if (args.options.count("no-deadline")) opt.check_deadline = false;
  const PlanChecker checker(opt);

  TextTable t({"policy", "slot", "violations", "first code"});
  std::size_t total_violations = 0;
  std::vector<std::string> details;
  for (const auto& [policy_name, run_doc] : doc.as_object()) {
    const Json& slots = run_doc.at("slots");
    for (std::size_t i = 0; i < slots.size(); ++i) {
      const std::size_t slot = slots[i].at("slot").as_index();
      const SlotInput input = sc.slot_input(slot);
      const DispatchPlan plan =
          plan_json::from_json(slots[i].at("plan"), sc.topology);
      const PlanCheckReport report = checker.check(sc.topology, input, plan);
      t.add_row({policy_name, std::to_string(slot),
                 std::to_string(report.violations.size()),
                 report.ok() ? std::string("-")
                             : to_string(report.violations.front().code)});
      if (!report.ok()) {
        total_violations += report.violations.size();
        details.push_back(policy_name + " slot " + std::to_string(slot) +
                          ":\n" + report.summary());
      }
    }
  }
  std::printf("%s", t.render().c_str());
  for (const auto& d : details) std::printf("%s\n", d.c_str());
  if (total_violations == 0) {
    std::printf("all plans satisfy the constraint system\n");
    return 0;
  }
  std::printf("%zu constraint violation(s) found\n", total_violations);
  return 1;
}

FaultSchedule resolve_schedule(const std::string& name, const Scenario& sc,
                               std::size_t slots) {
  if (name == "canned") return fault_gen::canned_acceptance();
  if (name == "canned-chaos") return fault_gen::canned_chaos();
  if (ends_with(name, ".json")) return fault_json::load(name);
  if (name.rfind("random:", 0) == 0) {
    fault_gen::Options opt;
    opt.slots = slots;
    return fault_gen::generate(sc.topology, std::stoull(name.substr(7)),
                               opt);
  }
  throw InvalidArgument("unknown fault schedule '" + name +
                        "' (not \"canned\", not \"canned-chaos\", not "
                        "random:SEED, not a .json file)");
}

int cmd_inject(const Args& args) {
  // Run schedule x policy behind the ResilientController and print the
  // rung/profit table; then show what the *unwrapped* policy would have
  // done facing the same raw telemetry.
  if (args.positional.size() != 2) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : std::min<std::size_t>(24, default_slots(sc));
  const FaultSchedule schedule =
      resolve_schedule(args.positional[1], sc, slots);
  const std::string which = args.options.count("policy")
                                ? args.options.at("policy")
                                : std::string("optimized");

  std::unique_ptr<Policy> policy;
  if (which == "optimized") {
    policy = std::make_unique<OptimizedPolicy>();
  } else if (which == "balanced") {
    policy = std::make_unique<BalancedPolicy>();
  } else {
    throw InvalidArgument("unknown policy '" + which +
                          "' (optimized|balanced)");
  }

  ResilientController controller(sc, schedule);
  ResilientController::Options ropt;
  if (args.options.count("workers")) {
    ropt.workers =
        static_cast<std::size_t>(std::stoul(args.options.at("workers")));
  }
  const RunResult run = controller.run(*policy, slots, 0, ropt);

  TextTable t({"slot", "faulted", "rung", "repairs", "net profit $"});
  for (std::size_t i = 0; i < slots; ++i) {
    t.add_row({std::to_string(i),
               schedule.faulted(i) ? std::string("yes") : std::string("-"),
               to_string(static_cast<FallbackRung>(run.fallback_rungs[i])),
               std::to_string(run.repair_adjustments[i]),
               format_double(run.slots[i].net_profit(), 2)});
  }
  std::printf("%zu slot(s), %zu faulted | policy %s\n%s", slots,
              run.faulted_slots, which.c_str(), t.render().c_str());

  // Shed-all baseline: the zero plan applied to every faulted world —
  // the profit floor the ladder must beat to be worth having.
  double shed_profit = 0.0;
  for (std::size_t i = 0; i < slots; ++i) {
    const FaultedSlot world = schedule.materialize(sc, i);
    shed_profit +=
        evaluate_plan(world.topology, world.input,
                      DispatchPlan::zero(world.topology))
            .net_profit();
  }
  std::printf(
      "resilient net profit $%s | shed-all baseline $%s | repairs %zu\n",
      format_double(run.total.net_profit(), 2).c_str(),
      format_double(shed_profit, 2).c_str(), run.total_repairs());

  // The same faults without the ladder: feed the raw telemetry (NaN
  // gaps and all) straight to a fresh policy instance.
  std::unique_ptr<Policy> naked = policy->clone();
  Policy& unwrapped = naked ? *naked : *policy;
  bool failed = false;
  for (std::size_t i = 0; i < slots && !failed; ++i) {
    const FaultedSlot world = schedule.materialize(sc, i);
    try {
      if (world.solver_failure) {
        throw NumericalError("injected solver failure");
      }
      (void)unwrapped.plan_slot(world.topology, world.raw_input);
    } catch (const std::exception& e) {
      std::printf("unwrapped %s fails at slot %zu: %s\n", which.c_str(), i,
                  e.what());
      failed = true;
    }
  }
  if (!failed) {
    std::printf("unwrapped %s survived this schedule (no corrupt inputs "
                "or solver failures hit it)\n",
                which.c_str());
  }
  return 0;
}

int cmd_forecast(const Args& args) {
  if (args.positional.empty()) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  const std::size_t total = default_slots(sc);
  const std::size_t first = args.options.count("first")
                                ? static_cast<std::size_t>(
                                      std::stoul(args.options.at("first")))
                                : std::min<std::size_t>(24, total / 2);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : total - first;
  const double inflation =
      args.options.count("inflation")
          ? std::stod(args.options.at("inflation"))
          : 1.15;
  const std::string model = args.options.count("model")
                                ? args.options.at("model")
                                : std::string("kalman");

  std::unique_ptr<Forecaster> proto;
  if (model == "naive") {
    proto = std::make_unique<NaiveForecaster>();
  } else if (model == "ewma") {
    proto = std::make_unique<EwmaForecaster>(0.4);
  } else if (model == "seasonal") {
    proto = std::make_unique<SeasonalNaiveForecaster>(24);
  } else if (model == "kalman") {
    proto = std::make_unique<KalmanForecaster>(25.0, 400.0);
  } else {
    throw InvalidArgument("unknown forecast model '" + model +
                          "' (naive|ewma|seasonal|kalman)");
  }

  ForecastingController::Options opt;
  opt.forecast_inflation = inflation;
  opt.warmup_slots = first;
  ForecastingController controller(sc, *proto, opt);
  OptimizedPolicy causal;
  const ForecastRunResult causal_run = controller.run(causal, slots, first);

  OptimizedPolicy oracle_policy;
  const RunResult oracle =
      SlotController(sc).run(oracle_policy, slots, first);

  double rmse = 0.0;
  for (const auto& e : causal_run.errors) rmse += e.rmse();
  rmse /= static_cast<double>(causal_run.errors.size());

  TextTable t({"operator", "net profit $", "completed %"});
  t.add_row({"oracle Optimized",
             format_double(oracle.total.net_profit(), 2),
             format_double(100.0 * oracle.total.completed_fraction(), 2)});
  t.add_row({"causal (" + model + " x" + format_double(inflation, 2) + ")",
             format_double(causal_run.run.total.net_profit(), 2),
             format_double(
                 100.0 * causal_run.run.total.completed_fraction(), 2)});
  std::printf("%zu slot(s) from %zu | forecast RMSE %.1f req/s\n%s", slots,
              first, rmse, t.render().c_str());
  return 0;
}

// ---- palb bench -----------------------------------------------------------

struct BenchWorkload {
  std::string name;      ///< stable key (CI thresholds refer to it)
  std::string scenario;  ///< resolve_scenario() input
  std::size_t slots;
};

benchjson::WorkloadResult run_bench_workload(const BenchWorkload& wl,
                                             std::size_t workers) {
  const Scenario sc = resolve_scenario(wl.scenario);
  const SlotController controller(sc);
  // Both arms disable the in-policy profile-sweep threads so the
  // comparison isolates slot-level fan-out — otherwise the "serial"
  // baseline already saturates the machine from inside each slot and
  // the measured speedup would be meaningless.
  OptimizedPolicy::Options popt;
  popt.parallel = false;

  benchjson::WorkloadResult out;
  out.name = wl.name;
  out.scenario = wl.scenario;
  out.slots = wl.slots;
  out.workers = workers;

  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };

  OptimizedPolicy serial_policy(popt);
  auto t0 = Clock::now();
  const RunResult serial =
      controller.run(serial_policy, wl.slots, 0, {.workers = 1});
  out.serial_ms = elapsed_ms(t0);

  OptimizedPolicy parallel_policy(popt);
  t0 = Clock::now();
  const RunResult parallel =
      controller.run(parallel_policy, wl.slots, 0, {.workers = workers});
  out.parallel_ms = elapsed_ms(t0);

  out.plans_identical = plan_json::run_to_json(serial).dump() ==
                        plan_json::run_to_json(parallel).dump();
  out.solver = parallel.stats;
  return out;
}

/// The fault-injected arm of the bench: the canned acceptance schedule
/// (DC 0 dark 8-11, trace gaps at 3 and 15, a forced solver failure at
/// 19) driven through the ResilientController, serial vs parallel, so
/// the report tracks both the ladder's overhead and its determinism.
benchjson::WorkloadResult run_resilience_workload(std::size_t workers) {
  const Scenario sc = resolve_scenario("basic-low");
  const FaultSchedule schedule = fault_gen::canned_acceptance();
  const ResilientController controller(sc, schedule);
  OptimizedPolicy::Options popt;
  popt.parallel = false;

  benchjson::WorkloadResult out;
  out.name = "resilience_basic";
  out.scenario = "basic-low";
  out.slots = 24;
  out.workers = workers;

  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };

  ResilientController::Options serial_opt;
  serial_opt.workers = 1;
  OptimizedPolicy serial_policy(popt);
  auto t0 = Clock::now();
  const RunResult serial =
      controller.run(serial_policy, out.slots, 0, serial_opt);
  out.serial_ms = elapsed_ms(t0);

  ResilientController::Options parallel_opt;
  parallel_opt.workers = workers;
  OptimizedPolicy parallel_policy(popt);
  t0 = Clock::now();
  const RunResult parallel =
      controller.run(parallel_policy, out.slots, 0, parallel_opt);
  out.parallel_ms = elapsed_ms(t0);

  out.plans_identical = plan_json::run_to_json(serial).dump() ==
                            plan_json::run_to_json(parallel).dump() &&
                        serial.fallback_rungs == parallel.fallback_rungs;
  out.solver = parallel.stats;
  out.faulted_slots = parallel.faulted_slots;
  out.repairs = parallel.total_repairs();
  out.fallback_rungs = parallel.fallback_rungs;
  return out;
}

int cmd_bench(const Args& args) {
  const bool smoke = args.options.count("smoke") > 0;
  const std::string out_path = args.options.count("out")
                                   ? args.options.at("out")
                                   : std::string("BENCH_palb.json");
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t workers =
      args.options.count("workers")
          ? static_cast<std::size_t>(std::stoul(args.options.at("workers")))
          : hardware;

  std::vector<BenchWorkload> workloads = {
      {"micro_basic", "basic-low", 4},
      {"fig06_worldcup", "worldcup", 24},
  };
  if (!smoke) {
    workloads.push_back({"fig08_google", "google", 6});
    // Week-scale horizon: the 24-slot traces wrap modulo their length.
    workloads.push_back({"week_worldcup", "worldcup", 168});
  }

  std::vector<benchjson::WorkloadResult> results;
  results.reserve(workloads.size());
  for (const auto& wl : workloads) {
    std::fprintf(stderr, "bench: %s (%zu slots, %zu workers)...\n",
                 wl.name.c_str(), wl.slots, workers);
    results.push_back(run_bench_workload(wl, workers));
  }
  std::fprintf(stderr, "bench: resilience_basic (24 slots, %zu workers)...\n",
               workers);
  results.push_back(run_resilience_workload(workers));

  benchjson::write_file(out_path,
                        benchjson::document(hardware, workers, smoke,
                                            results));

  TextTable t({"workload", "slots", "serial ms", "parallel ms", "speedup",
               "slots/s", "pruned", "cache hit %", "plans identical"});
  for (const auto& r : results) {
    t.add_row({r.name, std::to_string(r.slots),
               format_double(r.serial_ms, 1),
               format_double(r.parallel_ms, 1),
               format_double(r.speedup(), 2),
               format_double(r.slots_per_sec(), 1),
               std::to_string(r.solver.profiles_pruned),
               format_double(100.0 * r.solver.cache_hit_rate(), 1),
               r.plans_identical ? "yes" : "NO"});
  }
  std::printf("%swrote %s\n", t.render().c_str(), out_path.c_str());

  int rc = 0;
  for (const auto& r : results) {
    if (!r.plans_identical) {
      std::fprintf(stderr,
                   "FAIL: %s parallel plans diverge from the 1-worker "
                   "baseline\n",
                   r.name.c_str());
      rc = 1;
    }
  }
  if (args.options.count("min-speedup")) {
    // The gate reads the fig06 workload: large enough to parallelize,
    // small enough for CI. Sub-threshold runs on single-core machines
    // are expected — CI supplies the flag only on multi-core runners.
    const double min_speedup = std::stod(args.options.at("min-speedup"));
    for (const auto& r : results) {
      if (r.name == "fig06_worldcup" && r.speedup() < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: fig06_worldcup speedup %.2fx below the "
                     "--min-speedup %.2fx gate\n",
                     r.speedup(), min_speedup);
        rc = 1;
      }
    }
  }
  return rc;
}

// ---- palb qps -------------------------------------------------------------

int cmd_qps(const Args& args) {
  const std::string name =
      args.positional.empty() ? std::string("worldcup") : args.positional[0];
  const Scenario sc = resolve_scenario(name);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : std::min<std::size_t>(24, default_slots(sc));
  const std::size_t threads =
      args.options.count("threads")
          ? static_cast<std::size_t>(std::stoul(args.options.at("threads")))
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const double seconds = args.options.count("seconds")
                             ? std::stod(args.options.at("seconds"))
                             : 1.0;
  const std::uint64_t seed =
      args.options.count("seed") ? std::stoull(args.options.at("seed")) : 1;
  const std::string out_path = args.options.count("out")
                                   ? args.options.at("out")
                                   : std::string("BENCH_palb.json");
  const std::string which = args.options.count("policy")
                                ? args.options.at("policy")
                                : std::string("balanced");

  std::unique_ptr<Policy> policy;
  if (which == "optimized") {
    policy = std::make_unique<OptimizedPolicy>();
  } else if (which == "balanced") {
    policy = std::make_unique<BalancedPolicy>();
  } else {
    throw InvalidArgument("unknown policy '" + which +
                          "' (optimized|balanced)");
  }

  // Slow path: the planner solves asynchronously and hot-swaps each
  // applied plan into `live`; the dispatcher compiles routing tables off
  // those snapshots. The fast path starts the moment slot 0's plan lands
  // and keeps routing through every subsequent mid-stream swap.
  PlanHandle live;
  serve::Dispatcher dispatcher(sc.topology, live);
  serve::AsyncPlanner planner(sc, FaultSchedule{}, live);
  std::future<RunResult> run = planner.solve_async(*policy, slots);
  if (serve::wait_for_version(dispatcher, 1, 120.0) == 0) {
    run.get();  // surfaces the solve failure that kept version at 0
    throw NumericalError("no plan published within 120 s");
  }

  const serve::RequestStream stream =
      serve::RequestStream::compile(sc.topology, sc.slot_input(0), seed);

  // --admission: the overload gate in front of routing, sized against
  // the same offered mix the request stream draws from.
  const bool with_admission = args.options.count("admission") > 0;
  std::unique_ptr<serve::AdmissionController> admission;
  if (with_admission) {
    admission = std::make_unique<serve::AdmissionController>(
        sc.topology, live, sc.slot_input(0));
  }

  std::fprintf(stderr,
               "qps: %s, %zu driver thread(s), %.1f s timed run%s\n",
               name.c_str(), threads, seconds,
               with_admission ? ", admission on" : "");
  serve::QpsOptions timed_opt;
  timed_opt.threads = threads;
  timed_opt.seconds = seconds;
  timed_opt.admission = admission.get();
  const serve::QpsReport timed = run_qps(dispatcher, stream, timed_opt);

  const RunResult solved = run.get();  // plan stream is now quiescent
  dispatcher.refresh();

  // Determinism arm: with the plan quiescent, the recorded decisions of
  // a 1-thread run and an N-thread run must be byte-identical.
  serve::QpsOptions fixed_opt;
  fixed_opt.total_requests = 1u << 16;
  fixed_opt.record_decisions = true;
  fixed_opt.admission = admission.get();
  fixed_opt.threads = 1;
  const serve::QpsReport lone = run_qps(dispatcher, stream, fixed_opt);
  fixed_opt.threads = std::max<std::size_t>(2, threads);
  const serve::QpsReport many = run_qps(dispatcher, stream, fixed_opt);
  const bool identical = lone.decisions == many.decisions;

  benchjson::QpsResult result;
  result.scenario = name;
  result.slots = slots;
  result.threads = timed.threads;
  result.requests = timed.requests;
  result.routed = timed.routed;
  result.no_route = timed.no_route;
  result.elapsed_seconds = timed.elapsed_seconds;
  result.qps = timed.qps();
  result.p50_ns = timed.p50_ns;
  result.p90_ns = timed.p90_ns;
  result.p99_ns = timed.p99_ns;
  result.p999_ns = timed.p999_ns;
  result.max_ns = timed.max_ns;
  result.latency_samples = timed.latency_samples;
  result.min_plan_version = timed.min_plan_version;
  result.max_plan_version = timed.max_plan_version;
  result.rebuilds = timed.dispatcher.rebuilds;
  result.refresh_skips = timed.dispatcher.refresh_skips;
  result.stalled_routes = timed.dispatcher.stalled_routes;
  result.identical_across_threads = identical;
  result.shed_requests = timed.shed;
  const serve::AsyncPlanner::WatchdogStats watchdog =
      planner.watchdog_stats();
  result.retry_count = watchdog.retries;
  result.stale_plan_ns = watchdog.stale_plan_ns;
  benchjson::write_file(out_path,
                        benchjson::with_qps_section(out_path, result));

  TextTable t({"metric", "value"});
  t.add_row({"routing decisions/s", format_double(timed.qps(), 0)});
  t.add_row({"requests routed", std::to_string(timed.routed)});
  t.add_row({"no-route", std::to_string(timed.no_route)});
  if (with_admission) t.add_row({"shed", std::to_string(timed.shed)});
  t.add_row({"p50 latency ns", format_double(timed.p50_ns, 0)});
  t.add_row({"p99 latency ns", format_double(timed.p99_ns, 0)});
  t.add_row({"p999 latency ns", format_double(timed.p999_ns, 0)});
  t.add_row({"plan versions seen",
             std::to_string(timed.min_plan_version) + ".." +
                 std::to_string(timed.max_plan_version)});
  t.add_row({"table rebuilds", std::to_string(timed.dispatcher.rebuilds)});
  t.add_row({"refresh skips",
             std::to_string(timed.dispatcher.refresh_skips)});
  t.add_row({"plan-swap stalls",
             std::to_string(timed.dispatcher.stalled_routes)});
  t.add_row({"identical across threads", identical ? "yes" : "NO"});
  std::printf("%zu slot(s) solved (net profit $%s) | %zu driver thread(s)"
              "\n%swrote %s\n",
              slots, format_double(solved.total.net_profit(), 2).c_str(),
              timed.threads, t.render().c_str(), out_path.c_str());

  int rc = 0;
  if (!identical) {
    std::fprintf(stderr, "FAIL: routing decisions differ between 1 and "
                         "%zu driver threads\n",
                 many.threads);
    rc = 1;
  }
  if (timed.dispatcher.stalled_routes != 0) {
    std::fprintf(stderr, "FAIL: %llu route(s) stalled on a plan swap "
                         "(contract: zero)\n",
                 static_cast<unsigned long long>(
                     timed.dispatcher.stalled_routes));
    rc = 1;
  }
  if (args.options.count("min-qps")) {
    const double min_qps = std::stod(args.options.at("min-qps"));
    if (timed.qps() < min_qps) {
      std::fprintf(stderr,
                   "FAIL: %.0f routing decisions/s below the --min-qps "
                   "%.0f gate\n",
                   timed.qps(), min_qps);
      rc = 1;
    }
  }
  return rc;
}

// ---- palb chaos -----------------------------------------------------------

int cmd_chaos(const Args& args) {
  const std::string name =
      args.positional.empty() ? std::string("worldcup") : args.positional[0];
  const std::string schedule_name = args.positional.size() > 1
                                        ? args.positional[1]
                                        : std::string("canned-chaos");
  const Scenario sc = resolve_scenario(name);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : std::min<std::size_t>(24, default_slots(sc));
  const FaultSchedule schedule = resolve_schedule(schedule_name, sc, slots);
  const std::string which = args.options.count("policy")
                                ? args.options.at("policy")
                                : std::string("balanced");
  const std::string out_path = args.options.count("out")
                                   ? args.options.at("out")
                                   : std::string("BENCH_palb.json");

  std::unique_ptr<Policy> policy;
  if (which == "optimized") {
    policy = std::make_unique<OptimizedPolicy>();
  } else if (which == "balanced") {
    policy = std::make_unique<BalancedPolicy>();
  } else {
    throw InvalidArgument("unknown policy '" + which +
                          "' (optimized|balanced)");
  }

  serve::ChaosOptions opt;
  opt.num_slots = slots;
  if (args.options.count("workers")) {
    opt.solve_workers =
        static_cast<std::size_t>(std::stoul(args.options.at("workers")));
  }
  if (args.options.count("requests")) {
    opt.requests_per_slot = std::stoull(args.options.at("requests"));
  }
  if (args.options.count("ttl")) {
    opt.stale_plan_ttl_slots =
        static_cast<std::size_t>(std::stoul(args.options.at("ttl")));
  }
  if (args.options.count("seed")) {
    opt.stream_seed = std::stoull(args.options.at("seed"));
  }
  if (args.options.count("timed")) {
    opt.timed_seconds = std::stod(args.options.at("timed"));
  }

  std::fprintf(stderr, "chaos: %s x %s, %zu slot(s), policy %s\n",
               name.c_str(), schedule_name.c_str(), slots, which.c_str());
  const serve::ChaosReport report =
      serve::run_chaos(sc, schedule, *policy, opt);

  benchjson::ChaosResult result;
  result.scenario = name;
  result.schedule = schedule_name;
  result.slots = report.slots;
  result.faulted_slots = report.faulted_slots;
  result.stalled_solves = report.stalled_solves;
  result.delayed_publishes = report.delayed_publishes;
  result.ttl_escalations = report.ttl_escalations;
  result.fallback_rungs = report.fallback_rungs;
  result.requests = report.requests;
  result.routed = report.routed;
  result.no_route = report.no_route;
  result.shed = report.shed;
  result.shed_fraction = report.shed_fraction();
  result.max_stale_slots = report.max_stale_slots;
  result.mean_stale_slots = report.mean_stale_slots;
  result.stale_plan_ttl_slots = opt.stale_plan_ttl_slots;
  result.stalled_routes = report.stalled_routes;
  result.decisions_identical = report.decisions_identical;
  result.thread_counts = opt.thread_counts;
  result.timed_qps = report.timed_qps;
  result.p50_ns = report.p50_ns;
  result.p99_ns = report.p99_ns;
  result.p999_ns = report.p999_ns;
  result.max_ns = report.max_ns;
  result.latency_samples = report.latency_samples;
  benchjson::write_file(out_path,
                        benchjson::with_chaos_section(out_path, result));

  TextTable t({"metric", "value"});
  t.add_row({"slots / faulted", std::to_string(report.slots) + " / " +
                                    std::to_string(report.faulted_slots)});
  t.add_row({"stalled solves", std::to_string(report.stalled_solves)});
  t.add_row({"delayed publishes",
             std::to_string(report.delayed_publishes)});
  t.add_row({"ttl escalations", std::to_string(report.ttl_escalations)});
  t.add_row({"requests replayed", std::to_string(report.requests)});
  t.add_row({"shed fraction",
             format_double(report.shed_fraction(), 4)});
  t.add_row({"max stale slots", std::to_string(report.max_stale_slots)});
  t.add_row({"plan-swap stalls", std::to_string(report.stalled_routes)});
  t.add_row({"identical across threads",
             report.decisions_identical ? "yes" : "NO"});
  if (report.latency_samples > 0) {
    t.add_row({"timed decisions/s", format_double(report.timed_qps, 0)});
    t.add_row({"p99 latency ns", format_double(report.p99_ns, 0)});
    t.add_row({"p999 latency ns", format_double(report.p999_ns, 0)});
  }
  std::printf("%swrote %s\n", t.render().c_str(), out_path.c_str());

  // Graceful-degradation gates: serving never stalls, decisions stay
  // deterministic, staleness stays within the TTL, shedding stays
  // bounded.
  int rc = 0;
  if (report.stalled_routes != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu route(s) stalled on a plan swap "
                 "(contract: zero)\n",
                 static_cast<unsigned long long>(report.stalled_routes));
    rc = 1;
  }
  if (!report.decisions_identical) {
    std::fprintf(stderr,
                 "FAIL: decisions differ across driver thread counts\n");
    rc = 1;
  }
  if (report.max_stale_slots > opt.stale_plan_ttl_slots) {
    std::fprintf(stderr,
                 "FAIL: stale-plan exposure %zu slot(s) exceeds the TTL "
                 "of %zu\n",
                 report.max_stale_slots, opt.stale_plan_ttl_slots);
    rc = 1;
  }
  if (args.options.count("max-shed")) {
    const double max_shed = std::stod(args.options.at("max-shed"));
    if (report.shed_fraction() > max_shed) {
      std::fprintf(stderr,
                   "FAIL: shed fraction %.4f exceeds the --max-shed %.4f "
                   "gate\n",
                   report.shed_fraction(), max_shed);
      rc = 1;
    }
  }
  return rc;
}

int cmd_simulate(const Args& args) {
  if (args.positional.empty()) return usage();
  const Scenario sc = resolve_scenario(args.positional[0]);
  const std::size_t slots =
      args.options.count("slots")
          ? static_cast<std::size_t>(std::stoul(args.options.at("slots")))
          : default_slots(sc);
  const std::uint64_t seed =
      args.options.count("seed") ? std::stoull(args.options.at("seed")) : 1;

  const SlotController controller(sc);
  OptimizedPolicy policy;
  const RunResult run = controller.run(policy, slots);
  SlotSimulator sim;
  Rng rng(seed);
  double analytic = 0.0, simulated = 0.0;
  for (std::size_t t = 0; t < slots; ++t) {
    analytic += run.slots[t].net_profit();
    simulated += sim.simulate(sc.topology, sc.slot_input(t), run.plans[t],
                              rng)
                     .net_profit_mean_delay();
  }
  std::printf("analytic net profit:  $%.2f\n", analytic);
  std::printf("simulated net profit: $%.2f  (gap %.2f%%)\n", simulated,
              100.0 * relative_difference(analytic, simulated));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "scenarios") return cmd_scenarios();
    if (cmd == "export") {
      if (argc != 4) return usage();
      return cmd_export(argv[2], argv[3]);
    }
    if (cmd == "run") return cmd_run(parse_args(argc, argv, 2));
    if (cmd == "simulate") return cmd_simulate(parse_args(argc, argv, 2));
    if (cmd == "forecast") return cmd_forecast(parse_args(argc, argv, 2));
    if (cmd == "replay") return cmd_replay(parse_args(argc, argv, 2));
    if (cmd == "check-plan") {
      return cmd_check_plan(parse_args(argc, argv, 2));
    }
    if (cmd == "inject") return cmd_inject(parse_args(argc, argv, 2));
    if (cmd == "bench") return cmd_bench(parse_args(argc, argv, 2));
    if (cmd == "qps") return cmd_qps(parse_args(argc, argv, 2));
    if (cmd == "chaos") return cmd_chaos(parse_args(argc, argv, 2));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
