#pragma once

// Seeded K2 violation: mu_ is designated `fastpath` in this fixture's
// layers.txt, and stall() dispatches pool work while holding it — the
// blocking call the zero-stall contract forbids.

namespace fixture {

class Handle {
 public:
  void stall() {
    MutexLock hold(mu_);
    pool_.submit([] {});
  }

 private:
  Mutex mu_;
  ThreadPool pool_;
};

}  // namespace fixture
