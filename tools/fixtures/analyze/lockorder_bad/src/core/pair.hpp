#pragma once

// Seeded lock-order inversion: the declared order is a_ before b_
// (PALB_ACQUIRED_AFTER), but swapped() nests the MutexLock scopes the
// other way around. The union graph has a_ -> b_ (declared) and
// b_ -> a_ (observed) — a K1 cycle.

namespace fixture {

class Pair {
 public:
  void swapped() {
    MutexLock hold_b(b_);
    MutexLock hold_a(a_);
    ++n_;
  }

 private:
  Mutex a_;
  Mutex b_ PALB_ACQUIRED_AFTER(a_);
  int n_ = 0;
};

}  // namespace fixture
