#pragma once

// Negative case for K1: the nested MutexLock scopes agree with the
// declared PALB_ACQUIRED_AFTER order, so the union graph is acyclic.

namespace fixture {

class Pair {
 public:
  void ordered() {
    MutexLock hold_a(a_);
    MutexLock hold_b(b_);
    ++n_;
  }

 private:
  Mutex a_;
  Mutex b_ PALB_ACQUIRED_AFTER(a_);
  int n_ = 0;
};

}  // namespace fixture
