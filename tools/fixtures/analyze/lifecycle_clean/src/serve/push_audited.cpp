// Negative case for P2: the plan passes the checker's audit (with the
// repair fallback) before it is published.
#include "check/plan_checker.hpp"
#include "core/plan_handle.hpp"

namespace fixture {

void push(PlanChecker& checker, PlanHandle& live, DispatchPlan plan) {
  checker.check(plan);
  live.publish(plan);
}

}  // namespace fixture
