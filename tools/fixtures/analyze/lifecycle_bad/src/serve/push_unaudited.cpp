// Seeded P2 violation: the plan goes straight to publish() with no
// PlanChecker check()/repair() anywhere in the file.
#include "core/plan_handle.hpp"

namespace fixture {

void push(PlanHandle& live, DispatchPlan plan) { live.publish(plan); }

}  // namespace fixture
