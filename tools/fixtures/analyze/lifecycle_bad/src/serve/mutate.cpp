// Seeded P3 violation: serving code reaching into a DispatchPlan and
// editing routed rate mass after the audit.
#include "cloud/plan.hpp"

namespace fixture {

void skim(DispatchPlan& plan) { plan.rate[0][0][0] = 0.0; }

}  // namespace fixture
