#pragma once

#include "util/helper.hpp"

namespace fixture {

inline int serve_api() { return helper(); }

}  // namespace fixture
