#pragma once

namespace fixture {

inline int helper() { return 1; }

}  // namespace fixture
