#pragma once

namespace fixture {

inline int serve_api() { return 1; }

}  // namespace fixture
