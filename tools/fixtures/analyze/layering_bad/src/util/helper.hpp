#pragma once

// Seeded violation: a foundation module reaching up into the serving
// plane. palb-analyze must flag this include as an upward L1 edge.
#include "serve/api.hpp"

namespace fixture {

inline int helper() { return serve_api(); }

}  // namespace fixture
