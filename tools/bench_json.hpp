#pragma once

// Machine-readable benchmark report (schema "palb-bench-v1") for the
// `palb bench` subcommand. One document per invocation:
//
//   {
//     "schema": "palb-bench-v1",
//     "hardware_concurrency": 4,
//     "workers": 4,                 // resolved worker budget
//     "smoke": false,
//     "workloads": [
//       {
//         "name": "fig06_worldcup",
//         "scenario": "worldcup",
//         "slots": 24,
//         "workers": 4,
//         "serial_ms": 812.4,       // 1 worker, sequential profile sweep
//         "parallel_ms": 231.9,     // N workers via SlotController
//         "slots_per_sec": 103.5,   // parallel arm
//         "speedup": 3.50,          // serial_ms / parallel_ms
//         "plans_identical": true,  // byte-identical plan JSON
//         "faulted_slots": 0,       // slots a fault schedule touched
//         "repairs": 0,             // PlanChecker::repair() adjustments
//         "fallback_rungs": [1, 1], // per-slot ladder rung (1..5)
//         "solver": {
//           "profiles_examined": 1536,
//           "profiles_pruned": 410,
//           "lp_iterations": 9021,
//           "simplex_pivots": 9021,   // alias of lp_iterations
//           "phase1_skips": 1490,     // solves that needed no phase 1
//           "basis_warm_hits": 1433,  // solves that accepted a warm basis
//           "warm_start_hits": 20,
//           "warm_start_misses": 4,
//           "cache_hit_rate": 0.8333
//         }                          // parallel arm's counters
//       }, ...
//     ]
//   }
//
// CI consumes this file (see .github/workflows/ci.yml bench-smoke and
// docs/BENCHMARKING.md); keep the schema additive — consumers pin
// "schema" and ignore unknown keys.

#include <cstdint>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "util/json.hpp"

namespace palb::benchjson {

inline constexpr const char* kSchema = "palb-bench-v1";

/// Schema tag of the "qps" section `palb qps` adds to the same report
/// file — the online dispatcher fast path (src/serve/) driven by the
/// closed-loop QPS driver. Nested under the top-level document as
///
///   { "schema": "palb-bench-v1", ..., "qps": { "schema": "palb-qps-v1",
///     "qps": 2.3e7, "p50_ns": 41.0, "stalled_routes": 0, ... } }
///
/// so bench and qps runs accumulate into one artifact; each command
/// overwrites only its own section. docs/SERVING.md documents the keys.
inline constexpr const char* kQpsSchema = "palb-qps-v1";

/// Schema tag of the "chaos" section `palb chaos` adds to the same
/// report file — the overload-hardening harness (src/serve/chaos.hpp):
/// shed fraction, stale-plan exposure, fallback-ladder usage, and the
/// cross-thread-count determinism verdict under a fault schedule.
/// Nested exactly like "qps"; docs/OVERLOAD.md documents the keys.
inline constexpr const char* kChaosSchema = "palb-chaos-v1";

/// One workload's head-to-head timing: the same slot range planned by
/// the same policy configuration, once with 1 worker and once with the
/// full worker budget.
struct WorkloadResult {
  std::string name;      ///< stable key CI thresholds refer to
  std::string scenario;  ///< resolve_scenario() name it ran on
  std::size_t slots = 0;
  std::size_t workers = 0;  ///< worker budget of the parallel arm
  double serial_ms = 0.0;
  double parallel_ms = 0.0;
  bool plans_identical = false;
  /// Solver-effort counters of the parallel arm (RunResult::stats).
  PolicyStats solver;
  /// Resilience telemetry of the parallel arm (zero / empty on plain
  /// workloads): slots the fault schedule touched, total
  /// PlanChecker::repair() adjustments, and the per-slot ladder rung
  /// (1 = full solve ... 5 = shed-all; docs/RESILIENCE.md).
  std::size_t faulted_slots = 0;
  std::size_t repairs = 0;
  std::vector<int> fallback_rungs;

  double speedup() const {
    return parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;
  }
  double slots_per_sec() const {
    return parallel_ms > 0.0
               ? 1000.0 * static_cast<double>(slots) / parallel_ms
               : 0.0;
  }
};

Json to_json(const WorkloadResult& w);

/// One `palb qps` run: throughput and routing-latency percentiles of the
/// timed arm, plus the fixed-mode determinism verdict (decisions
/// byte-identical across driver-thread counts).
struct QpsResult {
  std::string scenario;
  std::size_t slots = 0;
  std::size_t threads = 0;
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t no_route = 0;
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double p50_ns = 0.0, p90_ns = 0.0, p99_ns = 0.0, p999_ns = 0.0;
  double max_ns = 0.0;
  std::uint64_t latency_samples = 0;
  std::uint64_t min_plan_version = 0, max_plan_version = 0;
  std::uint64_t rebuilds = 0, refresh_skips = 0, stalled_routes = 0;
  bool identical_across_threads = false;
  /// Overload counters (docs/OVERLOAD.md): requests shed by the
  /// admission gate, watchdog retries, and the wall-clock nanoseconds
  /// the live handle served cancellation-degraded plans. All zero when
  /// the run had no admission gate / watchdog attached — the keys are
  /// emitted regardless so consumers never branch on presence.
  std::uint64_t shed_requests = 0;
  std::uint64_t retry_count = 0;
  std::uint64_t stale_plan_ns = 0;
};

Json to_json(const QpsResult& q);

/// One `palb chaos` run (src/serve/chaos.hpp): the slow-path fault
/// telemetry plus the fast-path replay's shed / staleness / determinism
/// verdicts, serialized as the "chaos" section.
struct ChaosResult {
  std::string scenario;
  std::string schedule;
  std::size_t slots = 0;
  std::size_t faulted_slots = 0;
  std::size_t stalled_solves = 0;
  std::size_t delayed_publishes = 0;
  std::size_t ttl_escalations = 0;
  std::vector<int> fallback_rungs;
  std::uint64_t requests = 0;
  std::uint64_t routed = 0;
  std::uint64_t no_route = 0;
  std::uint64_t shed = 0;
  double shed_fraction = 0.0;
  std::size_t max_stale_slots = 0;
  double mean_stale_slots = 0.0;
  std::size_t stale_plan_ttl_slots = 0;
  std::uint64_t stalled_routes = 0;
  bool decisions_identical = false;
  std::vector<std::size_t> thread_counts;
  double timed_qps = 0.0;
  double p50_ns = 0.0, p99_ns = 0.0, p999_ns = 0.0, max_ns = 0.0;
  std::uint64_t latency_samples = 0;
};

Json to_json(const ChaosResult& c);

/// Loads `path` when it already holds a parseable JSON object (a prior
/// `palb bench` report, typically) and replaces its `key` section with
/// `section`; otherwise starts a fresh skeleton document carrying only
/// the schema tag and the section. This is how side harnesses (`palb
/// qps`, the ext_scale solver gate) accumulate into the one report
/// artifact without clobbering each other's sections.
Json with_section(const std::string& path, const std::string& key,
                  Json section);

/// Loads `path` when it already holds a parseable JSON object (a prior
/// `palb bench` report, typically) and replaces its "qps" section;
/// otherwise starts a fresh skeleton document carrying only the schema
/// tag and the section.
Json with_qps_section(const std::string& path, const QpsResult& q);

/// Same accumulation contract for the "chaos" section.
Json with_chaos_section(const std::string& path, const ChaosResult& c);

/// Assembles the whole palb-bench-v1 document.
Json document(std::size_t hardware_concurrency, std::size_t workers,
              bool smoke, const std::vector<WorkloadResult>& workloads);

/// Serializes `doc` to `path` (pretty-printed, trailing newline), then
/// re-parses the written bytes as a self-check so a malformed report can
/// never reach CI silently. Throws IoError on failure.
void write_file(const std::string& path, const Json& doc);

}  // namespace palb::benchjson
