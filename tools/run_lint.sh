#!/bin/sh
# palb-analyze entry point shared by CI and local runs
# (docs/STATIC_ANALYSIS.md tier 7).
#
#   tools/run_lint.sh [report-file] [extra palb_analyze args...]
#
# Builds the palb_analyze suite (dependency-free C++, works on the bare
# gcc container) and runs every pass — token rules, layering DAG,
# lock-order, plan lifecycle — over src/, tools/, bench/ and examples/.
# Writes the findings report to the optional [report-file] argument
# (default: build/palb_analyze_report.txt) and a SARIF 2.1.0 document
# next to it — CI uploads both as artifacts. Extra arguments (e.g.
# --diff-base origin/main) are passed straight through. Exit status is
# palb_analyze's own: 0 clean, 1 gated findings.
set -eu

cd "$(dirname "$0")/.."

REPORT="${1:-build/palb_analyze_report.txt}"
[ $# -gt 0 ] && shift
BUILD_DIR="${BUILD_DIR:-build}"
SARIF="${SARIF:-${REPORT%.txt}.sarif}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . \
        -DPALB_BUILD_BENCH=OFF \
        -DPALB_BUILD_EXAMPLES=OFF >/dev/null
fi
cmake --build "$BUILD_DIR" --target palb_analyze -j "$(nproc)" >/dev/null

mkdir -p "$(dirname "$REPORT")"
echo "run_lint: analyzing src/ tools/ bench/ examples/ (report: $REPORT," \
     "sarif: $SARIF)" >&2
"$BUILD_DIR/tools/palb_analyze/palb_analyze" \
    --root . --report "$REPORT" --sarif "$SARIF" "$@" \
    src tools bench examples
