#!/bin/sh
# palb-lint entry point shared by CI and local runs
# (docs/STATIC_ANALYSIS.md tier 6).
#
#   tools/run_lint.sh [report-file]
#
# Builds the palb_lint tool (dependency-free C++, works on the bare gcc
# container) and runs it over src/ and tools/. Writes the findings
# report to the optional [report-file] argument (default:
# build/palb_lint_report.txt) — CI uploads it as an artifact. Exit
# status is palb_lint's own: 0 clean, 1 findings.
set -eu

cd "$(dirname "$0")/.."

REPORT="${1:-build/palb_lint_report.txt}"
BUILD_DIR="${BUILD_DIR:-build}"

if [ ! -f "$BUILD_DIR/CMakeCache.txt" ]; then
  cmake -B "$BUILD_DIR" -S . \
        -DPALB_BUILD_BENCH=OFF \
        -DPALB_BUILD_EXAMPLES=OFF >/dev/null
fi
cmake --build "$BUILD_DIR" --target palb_lint -j "$(nproc)" >/dev/null

mkdir -p "$(dirname "$REPORT")"
echo "run_lint: scanning src/ and tools/ (report: $REPORT)" >&2
"$BUILD_DIR/tools/palb_lint/palb_lint" \
    --root . --report "$REPORT" src tools
