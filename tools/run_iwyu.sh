#!/bin/sh
# include-what-you-use entry point for src/util/ and src/core/
# (docs/STATIC_ANALYSIS.md tier 6 rides along: the include seams those
# layers rely on are pinned with "// IWYU pragma:" comments).
#
#   tools/run_iwyu.sh [extra iwyu_tool args...]
#
# Environment:
#   IWYU_TOOL   iwyu_tool.py / iwyu-tool binary (default: first on PATH)
#   BUILD_DIR   compile-commands build dir (default: build-iwyu)
#
# If no iwyu_tool is installed the script *skips* (exit 0) so the tier-1
# flow works on boxes without the clang toolchain; set
# PALB_IWYU_REQUIRED=1 to make a missing binary a hard failure.
set -eu

cd "$(dirname "$0")/.."

IWYU="${IWYU_TOOL:-}"
if [ -z "$IWYU" ]; then
  for candidate in iwyu_tool.py iwyu-tool iwyu_tool; do
    if command -v "$candidate" >/dev/null 2>&1; then
      IWYU="$candidate"
      break
    fi
  done
fi
if [ -z "$IWYU" ]; then
  if [ "${PALB_IWYU_REQUIRED:-0}" = "1" ]; then
    echo "run_iwyu: no iwyu_tool found and PALB_IWYU_REQUIRED=1; failing" >&2
    exit 1
  fi
  echo "run_iwyu: no iwyu_tool found; skipping (install" \
       "include-what-you-use or set IWYU_TOOL=/path/to/iwyu_tool.py)" >&2
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build-iwyu}"
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
        -DPALB_BUILD_BENCH=OFF \
        -DPALB_BUILD_EXAMPLES=OFF >/dev/null
fi

# The audited scope: the layers whose includes were hand-tightened and
# pinned with IWYU pragmas. Widen deliberately, not by default.
files=$(find src/util src/core -name '*.cpp' | sort)

echo "run_iwyu: $IWYU over $(echo "$files" | wc -l) files" >&2
# shellcheck disable=SC2086
exec "$IWYU" -p "$BUILD_DIR" $files -- -Xiwyu --error "$@"
