// Extension bench: a wider baseline panel. The paper compares only
// against its static Balanced heuristic; the geo-load-balancing
// literature it cites suggests two more natural foils —
//   Nearest  : latency-greedy CDN-style routing (wire-optimal, blind to
//              everything else)
//   CostMin  : serve-all-then-minimize-dollars (Rao et al.-style cost
//              optimizer, blind to the TUF's upper bands)
// Run across all three paper studies to show where each heuristic's
// blind spot bites and what the full profit-aware optimizer adds.

#include <cstdio>

#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/simple_policies.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

void run_study(const char* label, const Scenario& sc, std::size_t slots) {
  const SlotController controller(sc);
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  NearestPolicy nearest;
  CostMinPolicy costmin;

  std::printf("---- %s ----\n", label);
  TextTable t({"policy", "net profit $", "revenue $", "energy $",
               "transfer $", "completed %"});
  double best = 0.0;
  std::vector<std::pair<const char*, RunResult>> rows;
  rows.emplace_back("Optimized", controller.run(optimized, slots));
  rows.emplace_back("CostMin", controller.run(costmin, slots));
  rows.emplace_back("Balanced", controller.run(balanced, slots));
  rows.emplace_back("Nearest", controller.run(nearest, slots));
  for (const auto& [name, run] : rows) {
    best = std::max(best, run.total.net_profit());
    t.add_row({name, format_double(run.total.net_profit(), 2),
               format_double(run.total.revenue, 2),
               format_double(run.total.energy_cost, 2),
               format_double(run.total.transfer_cost, 2),
               format_double(100.0 * run.total.completed_fraction(), 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("(Optimized holds the panel best: %s)\n\n",
              rows[0].second.total.net_profit() >= best - 1e-6 ? "yes"
                                                               : "NO");
}

}  // namespace

int main() {
  run_study("basic high (1 slot)",
            paper::basic_synthetic(paper::ArrivalSet::kHigh), 1);
  run_study("worldcup (24 h)", paper::worldcup_study(), 24);
  run_study("google (6 h)", paper::google_study(), 6);
  std::printf(
      "Reading: Nearest burns profit on expensive-energy hours and never\n"
      "uses remote headroom; CostMin completes everything cheaply but\n"
      "always rides the lowest utility band; Balanced splits the\n"
      "difference; only the profit-aware optimizer prices all three\n"
      "trade-offs at once.\n");
  return 0;
}
