// Extension bench: right-sizing under switching costs. The paper assumes
// free, instant server toggling; its citation [8] (Lin et al., dynamic
// right-sizing) studies the opposite. With idle power in the ledger and
// a per-transition cost, compare three fleet managers over the WorldCup
// day:
//   minimal  : the paper's behaviour — power exactly what each slot needs
//   hold     : RightSizingPolicy's break-even timeout
//   all-on   : never toggle (the other extreme)
// Scored on net profit minus switching dollars, plus churn.

#include <cmath>
#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/paper_scenarios.hpp"
#include "core/right_sizing_policy.hpp"
#include "core/server_trajectory.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

struct Tally {
  double profit = 0.0;
  double switch_cost = 0.0;
  int transitions = 0;
  double server_hours = 0.0;
};

void tally_servers(Tally& tally, int servers) {
  tally.server_hours += servers;
}

Tally run(const Scenario& sc, RightSizingPolicy& policy,
          bool force_all_on) {
  Tally tally;
  std::vector<int> prev(sc.topology.num_datacenters(), 0);
  for (std::size_t t = 0; t < 24; ++t) {
    const SlotInput input = sc.slot_input(t);
    DispatchPlan plan = policy.plan_slot(sc.topology, input);
    if (force_all_on) {
      for (std::size_t l = 0; l < plan.dc.size(); ++l) {
        // palb-lint: allow(P3) the always-on baseline overrides right-sizing before scoring; that IS the experiment
        plan.dc[l].servers_on = sc.topology.datacenters[l].num_servers;
      }
    }
    tally.profit += evaluate_plan(sc.topology, input, plan).net_profit();
    for (std::size_t l = 0; l < plan.dc.size(); ++l) {
      tally.server_hours += plan.dc[l].servers_on;
      if (!force_all_on) continue;
      tally.transitions += std::abs(plan.dc[l].servers_on - prev[l]);
      prev[l] = plan.dc[l].servers_on;
    }
  }
  if (!force_all_on) {
    tally.switch_cost = policy.total_switch_cost();
    tally.transitions = policy.total_transitions();
  } else {
    // all-on pays only the initial power-up.
    tally.switch_cost = 0.0;
  }
  return tally;
}

}  // namespace

int main() {
  std::printf(
      "right-sizing under switching costs (WorldCup day, idle 2400 kW "
      "per server in model units)\n\n");
  TextTable t({"switch cost $", "manager", "profit - switching $",
               "transitions", "server-hours"});
  for (double switch_cost : {0.0, 200.0, 1000.0, 5000.0}) {
    Scenario sc = paper::worldcup_study();
    for (auto& dc : sc.topology.datacenters) dc.idle_power_kw = 2400.0;

    RightSizingPolicy::Options minimal_opt;
    minimal_opt.switch_cost = switch_cost;
    minimal_opt.max_hold_slots = 0;  // the paper: no holding
    RightSizingPolicy minimal(minimal_opt);
    const Tally a = run(sc, minimal, false);

    RightSizingPolicy::Options hold_opt;
    hold_opt.switch_cost = switch_cost;
    RightSizingPolicy hold(hold_opt);
    const Tally b = run(sc, hold, false);

    RightSizingPolicy all_on_policy;  // inner plan, then forced all-on
    const Tally c = run(sc, all_on_policy, true);

    // Clairvoyant bound (Lin et al. [8] style): per-DC offline-optimal
    // trajectories over the minimal policy's requirements.
    Tally offline;
    {
      RightSizingPolicy::Options probe_opt;
      probe_opt.max_hold_slots = 0;
      RightSizingPolicy probe(probe_opt);
      const std::size_t L = sc.topology.num_datacenters();
      std::vector<std::vector<int>> needed(L, std::vector<int>(24, 0));
      std::vector<std::vector<double>> idle(L, std::vector<double>(24, 0));
      for (std::size_t t = 0; t < 24; ++t) {
        const SlotInput input = sc.slot_input(t);
        const DispatchPlan plan = probe.plan_slot(sc.topology, input);
        // Profit with the *minimal* fleet, then correct idle/switching
        // to the offline trajectory below.
        const SlotMetrics m = evaluate_plan(sc.topology, input, plan);
        offline.profit += m.net_profit();
        for (std::size_t l = 0; l < L; ++l) {
          needed[l][t] = plan.dc[l].servers_on;
          idle[l][t] = sc.topology.datacenters[l].idle_power_kw *
                       input.price[l] * sc.topology.datacenters[l].pue *
                       (input.slot_seconds / 3600.0);
          // Remove the minimal fleet's idle bill; the trajectory's own
          // bill is added back after optimization.
          offline.profit += idle[l][t] * plan.dc[l].servers_on;
        }
      }
      for (std::size_t l = 0; l < L; ++l) {
        const TrajectoryResult traj = optimal_server_trajectory(
            needed[l], idle[l], switch_cost,
            sc.topology.datacenters[l].num_servers, 0);
        offline.profit -= traj.idle_cost;
        offline.switch_cost += traj.switch_cost;
        for (std::size_t t = 0; t < 24; ++t) {
          tally_servers(offline, traj.servers[t]);
        }
        int prev = 0;
        for (int s : traj.servers) {
          offline.transitions += std::abs(s - prev);
          prev = s;
        }
      }
    }

    auto add = [&](const char* name, const Tally& tally) {
      t.add_row({format_double(switch_cost, 0), name,
                 format_double(tally.profit - tally.switch_cost, 2),
                 std::to_string(tally.transitions),
                 format_double(tally.server_hours, 0)});
    };
    add("minimal (paper)", a);
    add("hold (break-even)", b);
    add("all-on", c);
    add("offline optimal", offline);
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: with free switching the paper's minimal fleet is exactly\n"
      "offline-optimal; as toggling gets expensive the break-even hold\n"
      "policy overtakes it and in fact *matches the clairvoyant optimum*\n"
      "(same fleet-cost trade at $1000+) despite seeing no future. The\n"
      "'offline optimal' row optimizes the fleet for the minimal plan's\n"
      "service level; all-on can exceed it at extreme switch costs only\n"
      "through a side channel — spare servers shorten delays and upgrade\n"
      "TUF bands, buying revenue rather than saving fleet cost.\n");
  return 0;
}
