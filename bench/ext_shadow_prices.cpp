// Extension bench: capacity shadow prices. The winning profile's LP dual
// on each data center's share-budget row prices "one more server" in
// dollars per hour without re-solving — the sensitivity-analysis story a
// commercial solver would give the paper's authors for free. Printed
// against a brute-force check (actually adding a server and re-solving).

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  std::printf(
      "marginal value of one extra server, $/hour (WorldCup study)\n\n");
  TextTable t({"hour", "dual dc1", "dual dc2", "dual dc3",
               "brute dc1", "brute dc3"});
  for (std::size_t hour : {4, 10, 14, 18, 21}) {
    const SlotInput input = sc.slot_input(hour);
    OptimizedPolicy policy;
    const DispatchPlan plan = policy.plan_slot(sc.topology, input);
    const double base =
        evaluate_plan(sc.topology, input, plan).net_profit();
    const auto duals = policy.server_shadow_prices();

    // Brute force for dc1 and dc3: add one server, re-plan, diff.
    double brute[2] = {0.0, 0.0};
    const std::size_t check_dcs[2] = {0, 2};
    for (int i = 0; i < 2; ++i) {
      Topology bigger = sc.topology;
      ++bigger.datacenters[check_dcs[i]].num_servers;
      OptimizedPolicy repolicy;
      const DispatchPlan replan = repolicy.plan_slot(bigger, input);
      brute[i] = evaluate_plan(bigger, input, replan).net_profit() - base;
    }

    t.add_row({std::to_string(hour), format_double(duals[0], 2),
               format_double(duals[1], 2), format_double(duals[2], 2),
               format_double(brute[0], 2), format_double(brute[1], 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: at off-peak hours capacity is slack and a new server is\n"
      "worth ~$0; at the peak the dual prices the *first marginal unit* of\n"
      "capacity. The brute-force column adds a whole server — a discrete\n"
      "jump that can run past the point where all offered traffic is\n"
      "served (the flow-conservation rows take over as the binding\n"
      "constraint), so it reads at or below the dual, approaching it as\n"
      "the overload deepens (hour 18).\n");
  return 0;
}
