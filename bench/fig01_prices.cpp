// Figure 1 reproduction: hourly electricity prices at three data-center
// locations over one day. The embedded curves preserve the features the
// algorithm exploits (see DESIGN.md §2): California priciest with a broad
// afternoon plateau, Texas volatile with a sharp spike, Georgia flat and
// cheap — and the cheapest location changes during the day.

#include <cstdio>

#include "market/price_library.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const auto set = prices::figure1_set();
  std::vector<double> hours;
  for (int h = 0; h < 24; ++h) hours.push_back(h);
  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const auto& trace : set) {
    names.push_back(trace.location() + " $/kWh");
    series.push_back(trace.values());
  }
  std::printf("%s", render_multi_series(
                        "Fig. 1 — electricity prices at different "
                        "locations in a day",
                        hours, names, series, "hour")
                        .c_str());

  TextTable summary({"location", "min", "mean", "max"});
  for (const auto& trace : set) {
    summary.add_row(trace.location(),
                    {trace.min_price(), trace.mean_price(),
                     trace.max_price()});
  }
  std::printf("\n%s", summary.render().c_str());

  // The arbitrage premise: count how often each location is cheapest.
  int cheapest_count[3] = {0, 0, 0};
  for (std::size_t h = 0; h < 24; ++h) {
    std::size_t best = 0;
    for (std::size_t l = 1; l < set.size(); ++l) {
      if (set[l].at(h) < set[best].at(h)) best = l;
    }
    ++cheapest_count[best];
  }
  std::printf("\nhours cheapest: %s %d | %s %d | %s %d\n",
              set[0].location().c_str(), cheapest_count[0],
              set[1].location().c_str(), cheapest_count[1],
              set[2].location().c_str(), cheapest_count[2]);
  return 0;
}
