// google-benchmark microbenchmarks for the queueing and trace substrates:
// the Eq. 1 algebra on the optimizer's hot path, Erlang-C, the
// discrete-event queue simulators, and the workload/price generators.

#include <benchmark/benchmark.h>

#include "market/price_generator.hpp"
#include "queueing/mg1.hpp"
#include "queueing/mm1.hpp"
#include "queueing/mm1_simulator.hpp"
#include "workload/generators.hpp"

namespace {

using namespace palb;

void BM_Mm1RequiredShare(benchmark::State& state) {
  double lambda = 10.0;
  for (auto _ : state) {
    lambda = lambda < 90.0 ? lambda + 0.1 : 10.0;
    benchmark::DoNotOptimize(mm1::required_share(lambda, 1.0, 120.0, 0.08));
  }
}
BENCHMARK(BM_Mm1RequiredShare);

void BM_ErlangC(benchmark::State& state) {
  const int servers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mmm::erlang_c(servers, 10.0, 0.8 * 10.0 * servers));
  }
}
BENCHMARK(BM_ErlangC)->Arg(4)->Arg(16)->Arg(64);

void BM_Mm1SimulatorFcfs(benchmark::State& state) {
  Mm1Simulator::Params p;
  p.arrival_rate = 50.0;
  p.service_rate = 80.0;
  p.horizon = static_cast<double>(state.range(0));
  p.warmup = 0.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(Mm1Simulator::run_fcfs(p, rng));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.arrival_rate *
                                                    p.horizon));
}
BENCHMARK(BM_Mm1SimulatorFcfs)->Arg(100)->Arg(1000);

void BM_Mm1SimulatorPs(benchmark::State& state) {
  Mm1Simulator::Params p;
  p.arrival_rate = 50.0;
  p.service_rate = 80.0;
  p.horizon = 200.0;
  p.warmup = 0.0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(Mm1Simulator::run_processor_sharing(p, rng));
  }
}
BENCHMARK(BM_Mm1SimulatorPs);

void BM_WorldCupTrace(benchmark::State& state) {
  workload::WorldCupParams p;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(workload::worldcup_like("w", p, rng));
  }
}
BENCHMARK(BM_WorldCupTrace);

void BM_OuPrices(benchmark::State& state) {
  OuPriceGenerator gen({});
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Rng rng(seed++);
    benchmark::DoNotOptimize(gen.generate("loc", 168, rng));
  }
}
BENCHMARK(BM_OuPrices);

}  // namespace
