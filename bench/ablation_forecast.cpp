// Ablation (paper §III): the paper plans each slot from that slot's
// average arrival rate and points at "existing prediction methods (e.g.
// the Kalman Filter [18])" for obtaining it. This bench closes the loop:
// run the WorldCup day *causally* — plan slot t from a forecast built on
// history through t-1, settle the ledger against realized traffic — and
// price each forecaster against the oracle (paper-style perfect rates).

#include <cstdio>
#include <string>
#include <vector>

#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "workload/generators.hpp"
#include "forecast/forecasting_controller.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

/// The canned WorldCup scenario wraps its 24-hour traces, which would
/// make the seasonal forecaster a perfect oracle; regenerate the same
/// study over 48 *distinct* hours (same diurnal pattern, fresh burst
/// noise each day) so day-2 forecasting is honest.
Scenario two_day_worldcup() {
  Scenario sc = paper::worldcup_study();
  Rng rng(77);
  workload::WorldCupParams base;
  base.base_rate = 25.0;
  base.daily_peak = 115.0;
  base.match_boost = 1.4;
  base.burst_sigma = 0.12;
  base.slots = 48;
  const auto frontends = workload::worldcup_frontends(4, base, rng);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t s = 0; s < 4; ++s) {
      sc.arrivals[k][s] = frontends[s].shifted(3 * k);
    }
  }
  sc.validate();
  return sc;
}

}  // namespace

int main() {
  const Scenario sc = two_day_worldcup();
  const std::size_t first = 24;  // one day of history to prime on
  const std::size_t slots = 24;

  OptimizedPolicy oracle_policy;
  const RunResult oracle =
      SlotController(sc).run(oracle_policy, slots, first);

  TextTable t({"arrival model", "RMSE req/s", "MAPE %", "net profit $/day",
               "vs oracle %"});
  t.add_row({"oracle (paper)", "-", "-",
             format_double(oracle.total.net_profit(), 2), "100.0"});

  const NaiveForecaster naive;
  const EwmaForecaster ewma(0.4);
  const SeasonalNaiveForecaster seasonal(24);
  const KalmanForecaster kalman(25.0, 400.0);
  struct Row {
    const Forecaster* proto;
    double inflation;
    std::string label;
  };
  const std::vector<Row> rows = {
      {&naive, 1.0, "naive"},
      {&ewma, 1.0, "ewma"},
      {&seasonal, 1.0, "seasonal-naive"},
      {&kalman, 1.0, "kalman"},
      // The asymmetric loss (stability cliff below, wasted shares above)
      // makes hedged forecasts strictly better operators.
      {&seasonal, 1.15, "seasonal +15% headroom"},
      {&kalman, 1.25, "kalman +25% headroom"},
  };
  for (const Row& row : rows) {
    ForecastingController::Options opt;
    opt.forecast_inflation = row.inflation;
    ForecastingController controller(sc, *row.proto, opt);
    OptimizedPolicy policy;
    const ForecastRunResult r = controller.run(policy, slots, first);
    double rmse = 0.0, mape = 0.0;
    for (const auto& e : r.errors) {
      rmse += e.rmse();
      mape += e.mape();
    }
    rmse /= static_cast<double>(r.errors.size());
    mape /= static_cast<double>(r.errors.size());
    t.add_row({row.label, format_double(rmse, 1),
               format_double(100.0 * mape, 1),
               format_double(r.run.total.net_profit(), 2),
               format_double(100.0 * r.run.total.net_profit() /
                                 oracle.total.net_profit(),
                             1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: forecast error translates directly into profit —\n"
      "over-forecasts waste shares, under-forecasts overload queues\n"
      "(zero revenue past the stability edge). Seasonal/Kalman models\n"
      "recover most of the oracle's profit on diurnal traffic.\n");
  return 0;
}
