// Extension bench: beyond paper scale. The paper's largest instance is
// 3 classes x 3 data centers; here the fleet grows to 8 data centers and
// 5 request classes with 3-level TUFs — a profile space of 4^40 ~ 1e24,
// far past exhaustive enumeration — exercising the optimizer's
// local-search path. Reports profit vs the baselines and the planning
// cost per slot.

#include <chrono>
#include <cmath>
#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/simple_policies.hpp"
#include "market/price_generator.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

Topology big_topology(std::size_t classes, std::size_t dcs, Rng& rng) {
  Topology topo;
  for (std::size_t k = 0; k < classes; ++k) {
    const double u1 = rng.uniform(0.006, 0.03);
    const double d1 = rng.uniform(0.03, 0.08);
    topo.classes.push_back(
        {"class" + std::to_string(k),
         StepTuf({u1, 0.6 * u1, 0.3 * u1}, {d1, 2.2 * d1, 4.5 * d1}),
         rng.uniform(0.5e-6, 2e-6)});
  }
  for (std::size_t s = 0; s < 6; ++s) {
    topo.frontends.push_back({"fe" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < dcs; ++l) {
    DataCenter dc;
    dc.name = "dc" + std::to_string(l);
    dc.num_servers = 12;
    dc.server_capacity = 1.0;
    for (std::size_t k = 0; k < classes; ++k) {
      dc.service_rate.push_back(rng.uniform(80.0, 220.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.001, 0.004));
    }
    topo.datacenters.push_back(std::move(dc));
  }
  topo.distance_miles.assign(6, std::vector<double>(dcs, 0.0));
  for (auto& row : topo.distance_miles) {
    for (double& d : row) d = rng.uniform(100.0, 2800.0);
  }
  topo.validate();
  return topo;
}

}  // namespace

int main() {
  Rng rng(8080);
  std::printf(
      "scale bench — 6 front-ends, 12 servers/DC, 3-level TUFs; profile\n"
      "space 4^(K*L) forces the local-search path beyond paper scale\n\n");
  TextTable t({"K x L", "profiles (log10)", "Optimized $/h",
               "Balanced $/h", "CostMin $/h", "plan ms", "LPs solved"});
  for (const auto& [classes, dcs] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 3}, {4, 5}, {5, 8}}) {
    const Topology topo = big_topology(classes, dcs, rng);
    SlotInput input;
    input.arrival_rate.assign(classes, std::vector<double>(6, 0.0));
    for (auto& row : input.arrival_rate) {
      for (double& r : row) r = rng.uniform(50.0, 350.0);
    }
    input.price.assign(dcs, 0.0);
    for (double& p : input.price) p = rng.uniform(0.03, 0.11);
    input.slot_seconds = 3600.0;

    OptimizedPolicy::Options opt_options;
    opt_options.local_search_restarts = 2;
    OptimizedPolicy optimized(opt_options);
    BalancedPolicy balanced;
    CostMinPolicy costmin;
    const auto start = std::chrono::steady_clock::now();
    const DispatchPlan plan = optimized.plan_slot(topo, input);
    const auto stop = std::chrono::steady_clock::now();

    const double opt = evaluate_plan(topo, input, plan).net_profit();
    const double bal =
        evaluate_plan(topo, input, balanced.plan_slot(topo, input))
            .net_profit();
    const double cm =
        evaluate_plan(topo, input, costmin.plan_slot(topo, input))
            .net_profit();
    const double log10_profiles =
        static_cast<double>(classes * dcs) * std::log10(4.0);
    t.add_row({std::to_string(classes) + " x " + std::to_string(dcs),
               format_double(log10_profiles, 1), format_double(opt, 2),
               format_double(bal, 2), format_double(cm, 2),
               format_double(std::chrono::duration<double, std::milli>(
                                 stop - start)
                                 .count(),
                             0),
               std::to_string(optimized.profiles_examined())});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: the 3x3 row is exhaustively enumerated (the 262k-LP\n"
      "sweep the paper-scale studies afford); the larger rows switch to\n"
      "first-improvement local search, which holds planning to seconds\n"
      "per hourly slot against a 10^12-10^24-profile space and still\n"
      "clears both heuristics by 2-5x.\n");
  return 0;
}
