// Extension bench: beyond paper scale. The paper's largest instance is
// 3 classes x 3 data centers; here the fleet grows to 8 data centers and
// 5 request classes with 3-level TUFs — a profile space of 4^40 ~ 1e24,
// far past exhaustive enumeration — exercising the optimizer's
// local-search path. Reports profit vs the baselines and the planning
// cost per slot.
//
// A second mode carries the CI solver scale gate:
//
//   ext_scale --gate BENCH_palb.json [--min-speedup X]
//
// On the 16 DC x 32 FE anchor dispatch LP (the largest per-profile LP
// that topology produces) the decomposed+sparse solver must beat the
// monolithic dense simplex by at least X (default 3) and land within
// 1e-9 of the dense point (the anchor LP is degenerate, so the two
// paths may end at different optimal bases whose refactorized points
// differ at ulp level), and OptimizedPolicy's plans must not change a
// byte when the decomposed path switches on. Results merge into the
// palb-bench-v1 report as the "ext_scale" section.

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/plan_json.hpp"
#include "core/simple_policies.hpp"
#include "solver/decomposed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

int run_gate(const std::string& out_path, double min_speedup) {
  std::printf(
      "solver scale gate — 8 classes x 32 front-ends x 16 DCs anchor LP\n");
  Rng rng(4242);
  const Topology topo = bench::scale_topology(8, 32, 16, rng);
  const SlotInput input = bench::scale_input(8, 32, 16, rng);
  const LinearProgram lp = bench::anchor_dispatch_lp(topo, input);
  (void)lp.column_view();  // both arms start from a materialized matrix

  SimplexSolver::Options dense_opt;
  dense_opt.sparse_pivoting = false;
  const SimplexSolver dense(dense_opt);
  DecomposedSolver::Options dec_opt;
  dec_opt.subproblem_workers = 0;  // hardware concurrency
  const DecomposedSolver dec(dec_opt);

  // Best-of-3 per arm: the gate compares algorithms, not scheduler
  // noise. Every repetition must return the same point (determinism).
  double dense_ms = 1e300;
  double dec_ms = 1e300;
  LpSolution dense_sol, dec_sol;
  for (int rep = 0; rep < 3; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    dense_sol = dense.solve(lp);
    dense_ms = std::min(dense_ms, ms_since(t0));
    t0 = std::chrono::steady_clock::now();
    dec_sol = dec.solve(lp);
    dec_ms = std::min(dec_ms, ms_since(t0));
  }
  const double speedup = dec_ms > 0.0 ? dense_ms / dec_ms : 0.0;
  // The anchor LP is degenerate: both arms reach the optimum but may
  // stop at different optimal bases, whose refactorized points differ
  // at ulp level. Gate the LP points at 1e-9 (objective scale-relative,
  // x componentwise); the policy-plan check below stays byte-exact.
  double dx_max = 0.0;
  if (dense_sol.x.size() == dec_sol.x.size()) {
    for (std::size_t i = 0; i < dense_sol.x.size(); ++i) {
      dx_max = std::max(dx_max, std::abs(dense_sol.x[i] - dec_sol.x[i]));
    }
  } else {
    dx_max = 1e300;
  }
  const double dobj = std::abs(dense_sol.objective - dec_sol.objective);
  const double obj_tol = 1e-9 * (1.0 + std::abs(dense_sol.objective));
  const bool lp_identical = dense_sol.status == LpStatus::kOptimal &&
                            dec_sol.status == LpStatus::kOptimal &&
                            dobj <= obj_tol && dx_max <= 1e-9;
  std::printf(
      "  %d vars, %d rows: monolithic dense %.1f ms | decomposed+sparse "
      "%.1f ms | speedup %.2fx (gate >= %.1fx) | points %s "
      "(dobj %.2e, dx_max %.2e)\n",
      lp.num_variables(), lp.num_constraints(), dense_ms, dec_ms, speedup,
      min_speedup, lp_identical ? "agree to 1e-9" : "DIVERGED", dobj,
      dx_max);
  std::printf(
      "  decomposition: %d blocks, %d coupling rows, %d master rounds, "
      "%d subproblem solves, %llu column updates skipped\n",
      dec.stats().blocks, dec.stats().coupling_rows,
      dec.stats().master_iterations, dec.stats().subproblem_solves,
      static_cast<unsigned long long>(dec_sol.sparse_price_skips));

  bool ok = true;
  if (!lp_identical) {
    std::fprintf(stderr,
                 "FAIL: decomposed point diverged from dense past 1e-9\n");
    ok = false;
  }
  if (speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: speedup %.2fx below the %.1fx gate\n",
                 speedup, min_speedup);
    ok = false;
  }

  // Policy-level plan identity on a 16-DC topology whose per-profile
  // LPs (288 vars) sit above the kAuto threshold: switching the
  // decomposed driver on must not change a byte of the plan.
  Rng prng(9090);
  const Topology ptopo = bench::scale_topology(3, 6, 16, prng);
  const SlotInput pinput = bench::scale_input(3, 6, 16, prng);
  OptimizedPolicy::Options off_opt;
  off_opt.local_search_restarts = 1;
  off_opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOff;
  OptimizedPolicy off_policy(off_opt);
  OptimizedPolicy::Options on_opt = off_opt;
  on_opt.decomposed_solve = OptimizedPolicy::DecomposedSolve::kOn;
  OptimizedPolicy on_policy(on_opt);
  const std::string off_plan =
      plan_json::to_json(off_policy.plan_slot(ptopo, pinput)).dump(2);
  const std::string on_plan =
      plan_json::to_json(on_policy.plan_slot(ptopo, pinput)).dump(2);
  const bool plans_identical = off_plan == on_plan;
  std::printf("  policy plans (16 DC, decomposed off vs on): %s "
              "(%llu master rounds, %llu subproblem solves)\n",
              plans_identical ? "byte-identical" : "DIVERGED",
              static_cast<unsigned long long>(on_policy.master_iterations()),
              static_cast<unsigned long long>(on_policy.subproblem_solves()));
  if (!plans_identical) {
    std::fprintf(stderr, "FAIL: decomposed solve changed a plan\n");
    ok = false;
  }

  // 50-DC scaling point: one decomposed solve of the 3 x 32 x 50 anchor
  // LP (4800 variables), timed so the bench-smoke budget keeps a ceiling
  // on the large-fleet solve path.
  Rng rng50(5050);
  const Topology topo50 = bench::scale_topology(3, 32, 50, rng50);
  const SlotInput input50 = bench::scale_input(3, 32, 50, rng50);
  const LinearProgram lp50 = bench::anchor_dispatch_lp(topo50, input50);
  (void)lp50.column_view();
  const auto t50 = std::chrono::steady_clock::now();
  const LpSolution sol50 = dec.solve(lp50);
  const double fifty_ms = ms_since(t50);
  std::printf("  50-DC point: %d vars solved in %.1f ms (%s)\n",
              lp50.num_variables(), fifty_ms,
              to_string(sol50.status));
  if (sol50.status != LpStatus::kOptimal) {
    std::fprintf(stderr, "FAIL: 50-DC anchor LP did not reach optimal\n");
    ok = false;
  }

  Json section = Json::object();
  section.set("schema", Json(std::string("palb-ext-scale-v1")));
  section.set("datacenters", Json(16.0));
  section.set("frontends", Json(32.0));
  section.set("classes", Json(8.0));
  section.set("variables", Json(static_cast<double>(lp.num_variables())));
  section.set("rows", Json(static_cast<double>(lp.num_constraints())));
  section.set("monolithic_dense_ms", Json(dense_ms));
  section.set("decomposed_sparse_ms", Json(dec_ms));
  section.set("speedup", Json(speedup));
  section.set("min_speedup", Json(min_speedup));
  section.set("lp_points_agree", Json(lp_identical));
  section.set("lp_dx_max", Json(dx_max));
  section.set("plans_identical", Json(plans_identical));
  section.set("master_iterations",
              Json(static_cast<double>(dec.stats().master_iterations)));
  section.set("subproblem_solves",
              Json(static_cast<double>(dec.stats().subproblem_solves)));
  section.set("sparse_price_skips",
              Json(static_cast<double>(dec_sol.sparse_price_skips)));
  section.set("fifty_dc_ms", Json(fifty_ms));
  section.set("pass", Json(ok));
  benchjson::write_file(
      out_path, benchjson::with_section(out_path, "ext_scale",
                                        std::move(section)));
  std::printf("%s (section \"ext_scale\" written to %s)\n",
              ok ? "PASS" : "FAIL", out_path.c_str());
  return ok ? 0 : 1;
}

int run_scale_table() {
  Rng rng(8080);
  std::printf(
      "scale bench — 6 front-ends, 12 servers/DC, 3-level TUFs; profile\n"
      "space 4^(K*L) forces the local-search path beyond paper scale\n\n");
  TextTable t({"K x L", "profiles (log10)", "Optimized $/h",
               "Balanced $/h", "CostMin $/h", "plan ms", "LPs solved"});
  for (const auto& [classes, dcs] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {3, 3}, {4, 5}, {5, 8}}) {
    const Topology topo = bench::scale_topology(classes, 6, dcs, rng);
    const SlotInput input = bench::scale_input(classes, 6, dcs, rng);

    OptimizedPolicy::Options opt_options;
    opt_options.local_search_restarts = 2;
    OptimizedPolicy optimized(opt_options);
    BalancedPolicy balanced;
    CostMinPolicy costmin;
    const auto start = std::chrono::steady_clock::now();
    const DispatchPlan plan = optimized.plan_slot(topo, input);
    const auto stop = std::chrono::steady_clock::now();

    const double opt = evaluate_plan(topo, input, plan).net_profit();
    const double bal =
        evaluate_plan(topo, input, balanced.plan_slot(topo, input))
            .net_profit();
    const double cm =
        evaluate_plan(topo, input, costmin.plan_slot(topo, input))
            .net_profit();
    const double log10_profiles =
        static_cast<double>(classes * dcs) * std::log10(4.0);
    t.add_row({std::to_string(classes) + " x " + std::to_string(dcs),
               format_double(log10_profiles, 1), format_double(opt, 2),
               format_double(bal, 2), format_double(cm, 2),
               format_double(std::chrono::duration<double, std::milli>(
                                 stop - start)
                                 .count(),
                             0),
               std::to_string(optimized.profiles_examined())});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: the 3x3 row is exhaustively enumerated (the 262k-LP\n"
      "sweep the paper-scale studies afford); the larger rows switch to\n"
      "first-improvement local search, which holds planning to seconds\n"
      "per hourly slot against a 10^12-10^24-profile space and still\n"
      "clears both heuristics by 2-5x.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string gate_path;
  double min_speedup = 3.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--gate") == 0 && i + 1 < argc) {
      gate_path = argv[++i];
    } else if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: ext_scale [--gate <report.json> "
                   "[--min-speedup X]]\n");
      return 2;
    }
  }
  if (!gate_path.empty()) return run_gate(gate_path, min_speedup);
  return run_scale_table();
}
