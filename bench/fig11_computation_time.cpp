// Figure 11 reproduction (§VII-B4): computation time of one control-slot
// solve as the number of servers per data center grows (Google-study
// topology, randomly generated arrivals, 5 runs averaged — matching the
// paper's setup). The paper reports exponentially increasing times for
// its CPLEX/AIMMS big-M MINLP; here the per-server big-M NLP formulation
// shows the same steep growth, while the profile-enumeration LP path
// stays nearly flat — and a second sweep over data-center count shows
// the enumeration's own exponential frontier (profiles = (levels+1)^(K*L)).

#include <chrono>
#include <cstdio>

#include "core/bigm_nlp_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "market/price_library.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace palb;

namespace {

double time_one(Policy& policy, const Topology& topo,
                const SlotInput& input) {
  const auto start = std::chrono::steady_clock::now();
  (void)policy.plan_slot(topo, input);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  std::printf("Fig. 11 — computation times of different server sets\n\n");

  // Sweep 1: servers per data center (the paper's x-axis), 5 runs each
  // with randomly generated request volumes.
  TextTable t({"servers/DC", "BigM-NLP ms (paper path)",
               "enum-LP ms (ours)", "NLP inner iters"});
  Rng rng(2013);
  for (int servers : {2, 4, 6, 8, 10}) {
    double nlp_ms = 0.0, lp_ms = 0.0;
    int iters = 0;
    for (int run = 0; run < 5; ++run) {
      const Scenario sc = paper::google_study(
          100 + static_cast<std::uint64_t>(run), 1.0,
          rng.uniform(0.6, 1.4), servers);
      const SlotInput input = sc.slot_input(static_cast<std::size_t>(run));
      BigMNlpPolicy::Options opt;
      opt.multistarts = 2;
      opt.nlp.max_outer = 12;
      opt.nlp.max_inner = 100;
      BigMNlpPolicy nlp(opt);
      OptimizedPolicy enumerator;
      nlp_ms += time_one(nlp, sc.topology, input);
      lp_ms += time_one(enumerator, sc.topology, input);
      iters += nlp.inner_iterations();
    }
    t.add_row({std::to_string(servers), format_double(nlp_ms / 5.0, 1),
               format_double(lp_ms / 5.0, 1), std::to_string(iters / 5)});
  }
  std::printf("%s\n", t.render().c_str());

  // Sweep 2: the enumeration path's own combinatorial frontier — profile
  // count is (levels+1)^(K*L), so time grows exponentially in the number
  // of data centers.
  TextTable t2({"data centers", "profiles", "enum-LP ms"});
  for (std::size_t L = 2; L <= 5; ++L) {
    Topology topo;
    topo.classes = {
        {"a", StepTuf({0.012, 0.006}, {0.05, 0.15}), 1e-6},
        {"b", StepTuf({0.018, 0.009}, {0.04, 0.12}), 1e-6},
    };
    topo.frontends = {{"fe"}};
    for (std::size_t l = 0; l < L; ++l) {
      topo.datacenters.push_back({"dc" + std::to_string(l), 6, 1.0,
                                  {110.0, 120.0}, {0.002, 0.003}, 1.0});
    }
    topo.distance_miles = {std::vector<double>(L, 800.0)};
    SlotInput input;
    input.arrival_rate = {{300.0}, {300.0}};
    input.price.assign(L, 0.05);
    input.slot_seconds = 3600.0;

    OptimizedPolicy enumerator;
    const double ms = time_one(enumerator, topo, input);
    t2.add_row({std::to_string(L),
                std::to_string(enumerator.profiles_examined()),
                format_double(ms, 1)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf(
      "\npaper: computation time increased exponentially with the server "
      "sets; both combinatorial frontiers above reproduce that trend.\n");
  return 0;
}
