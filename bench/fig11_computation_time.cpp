// Figure 11 reproduction (§VII-B4): computation time of one control-slot
// solve as the number of servers per data center grows (Google-study
// topology, randomly generated arrivals, 5 runs averaged — matching the
// paper's setup). The paper reports exponentially increasing times for
// its CPLEX/AIMMS big-M MINLP; here the per-server big-M NLP formulation
// shows the same steep growth, while the profile-enumeration LP path
// stays nearly flat — and a second sweep over data-center count shows
// the enumeration's own exponential frontier (profiles = (levels+1)^(K*L)).
// A third sweep goes beyond the paper: 10-50 data centers x up to 100
// front-ends, timing one anchor dispatch LP per shape through the dense
// monolithic simplex, the sparse monolithic kernel, and the decomposed
// (Dantzig-Wolfe) driver.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "market/price_library.hpp"
#include "solver/decomposed.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace palb;

namespace {

double time_one(Policy& policy, const Topology& topo,
                const SlotInput& input) {
  const auto start = std::chrono::steady_clock::now();
  (void)policy.plan_slot(topo, input);
  const auto stop = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(stop - start).count();
}

}  // namespace

int main() {
  std::printf("Fig. 11 — computation times of different server sets\n\n");

  // Sweep 1: servers per data center (the paper's x-axis), 5 runs each
  // with randomly generated request volumes.
  TextTable t({"servers/DC", "BigM-NLP ms (paper path)",
               "enum-LP ms (ours)", "NLP inner iters"});
  Rng rng(2013);
  for (int servers : {2, 4, 6, 8, 10}) {
    double nlp_ms = 0.0, lp_ms = 0.0;
    int iters = 0;
    for (int run = 0; run < 5; ++run) {
      const Scenario sc = paper::google_study(
          100 + static_cast<std::uint64_t>(run), 1.0,
          rng.uniform(0.6, 1.4), servers);
      const SlotInput input = sc.slot_input(static_cast<std::size_t>(run));
      BigMNlpPolicy::Options opt;
      opt.multistarts = 2;
      opt.nlp.max_outer = 12;
      opt.nlp.max_inner = 100;
      BigMNlpPolicy nlp(opt);
      OptimizedPolicy enumerator;
      nlp_ms += time_one(nlp, sc.topology, input);
      lp_ms += time_one(enumerator, sc.topology, input);
      iters += nlp.inner_iterations();
    }
    t.add_row({std::to_string(servers), format_double(nlp_ms / 5.0, 1),
               format_double(lp_ms / 5.0, 1), std::to_string(iters / 5)});
  }
  std::printf("%s\n", t.render().c_str());

  // Sweep 2: the enumeration path's own combinatorial frontier — profile
  // count is (levels+1)^(K*L), so time grows exponentially in the number
  // of data centers.
  TextTable t2({"data centers", "profiles", "enum-LP ms"});
  for (std::size_t L = 2; L <= 5; ++L) {
    Topology topo;
    topo.classes = {
        {"a", StepTuf({0.012, 0.006}, {0.05, 0.15}), 1e-6},
        {"b", StepTuf({0.018, 0.009}, {0.04, 0.12}), 1e-6},
    };
    topo.frontends = {{"fe"}};
    for (std::size_t l = 0; l < L; ++l) {
      topo.datacenters.push_back({"dc" + std::to_string(l), 6, 1.0,
                                  {110.0, 120.0}, {0.002, 0.003}, 1.0});
    }
    topo.distance_miles = {std::vector<double>(L, 800.0)};
    SlotInput input;
    input.arrival_rate = {{300.0}, {300.0}};
    input.price.assign(L, 0.05);
    input.slot_seconds = 3600.0;

    OptimizedPolicy enumerator;
    const double ms = time_one(enumerator, topo, input);
    t2.add_row({std::to_string(L),
                std::to_string(enumerator.profiles_examined()),
                format_double(ms, 1)});
  }
  std::printf("%s", t2.render().c_str());
  std::printf(
      "\npaper: computation time increased exponentially with the server "
      "sets; both combinatorial frontiers above reproduce that trend.\n");

  // Sweep 3 (beyond paper): one anchor dispatch LP per fleet shape,
  // solved three ways. This is the per-profile LP the optimizer solves
  // by the hundreds, at fleet sizes the paper never reaches; the
  // decomposed driver is what keeps the large shapes tractable.
  std::printf("\nbeyond paper — anchor LP solve time by fleet shape "
              "(3 classes)\n\n");
  TextTable t3({"FE x DC", "vars", "dense ms", "sparse ms",
                "decomposed ms", "blocks"});
  Rng rng3(3131);
  SimplexSolver::Options dense_opt;
  dense_opt.sparse_pivoting = false;
  const SimplexSolver dense(dense_opt);
  const SimplexSolver sparse;  // sparse_pivoting defaults on
  DecomposedSolver::Options dec_opt;
  dec_opt.subproblem_workers = 0;  // hardware concurrency
  const DecomposedSolver dec(dec_opt);
  for (const auto& [fes, dcs] :
       std::vector<std::pair<std::size_t, std::size_t>>{
           {20, 10}, {100, 10}, {20, 20}, {100, 20}, {20, 30},
           {100, 30}, {20, 50}, {100, 50}}) {
    const Topology topo = bench::scale_topology(3, fes, dcs, rng3);
    const SlotInput input = bench::scale_input(3, fes, dcs, rng3);
    const LinearProgram lp = bench::anchor_dispatch_lp(topo, input);
    (void)lp.column_view();

    auto t0 = std::chrono::steady_clock::now();
    (void)dense.solve(lp);
    const double dense_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    t0 = std::chrono::steady_clock::now();
    (void)sparse.solve(lp);
    const double sparse_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    t0 = std::chrono::steady_clock::now();
    (void)dec.solve(lp);
    const double dec_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    t3.add_row({std::to_string(fes) + " x " + std::to_string(dcs),
                std::to_string(lp.num_variables()),
                format_double(dense_ms, 1), format_double(sparse_ms, 1),
                format_double(dec_ms, 1),
                std::to_string(dec.stats().blocks)});
  }
  std::printf("%s", t3.render().c_str());
  std::printf(
      "\nReading: the dense tableau scales with vars x rows per pivot, "
      "so the\n100-front-end rows pull away; block decomposition cuts "
      "the large\nshapes by 2-8x by solving per-(class, front-end) "
      "subproblems in\nparallel under the coupling master, while tiny "
      "shapes stay with the\nmonolithic kernels (the policy's kAuto "
      "threshold handles routing).\n");
  return 0;
}
