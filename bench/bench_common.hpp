#pragma once

// Shared helpers for the figure-reproduction harnesses: run a scenario
// under the two headline policies and print paper-style series.

#include <cstdio>
#include <string>
#include <vector>

#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "solver/linear_program.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace palb::bench {

/// Beyond-paper-scale topology generator shared by ext_scale and the
/// fig11 scale sweep: `classes` request classes with 3-level TUFs,
/// `frontends` front-ends, `dcs` data centers of 12 servers each.
/// Draw order is (classes, data centers, distances) so for a fixed Rng
/// state and class/DC counts the topology is independent of how many
/// front-ends the caller asks for until the distance matrix.
inline Topology scale_topology(std::size_t classes, std::size_t frontends,
                               std::size_t dcs, Rng& rng) {
  Topology topo;
  for (std::size_t k = 0; k < classes; ++k) {
    const double u1 = rng.uniform(0.006, 0.03);
    const double d1 = rng.uniform(0.03, 0.08);
    topo.classes.push_back(
        {"class" + std::to_string(k),
         StepTuf({u1, 0.6 * u1, 0.3 * u1}, {d1, 2.2 * d1, 4.5 * d1}),
         rng.uniform(0.5e-6, 2e-6)});
  }
  for (std::size_t s = 0; s < frontends; ++s) {
    topo.frontends.push_back({"fe" + std::to_string(s)});
  }
  for (std::size_t l = 0; l < dcs; ++l) {
    DataCenter dc;
    dc.name = "dc" + std::to_string(l);
    dc.num_servers = 12;
    dc.server_capacity = 1.0;
    for (std::size_t k = 0; k < classes; ++k) {
      dc.service_rate.push_back(rng.uniform(80.0, 220.0));
      dc.energy_per_request_kwh.push_back(rng.uniform(0.001, 0.004));
    }
    topo.datacenters.push_back(std::move(dc));
  }
  topo.distance_miles.assign(frontends, std::vector<double>(dcs, 0.0));
  for (auto& row : topo.distance_miles) {
    for (double& d : row) d = rng.uniform(100.0, 2800.0);
  }
  topo.validate();
  return topo;
}

/// Matching slot input: per-(class, front-end) arrivals and per-DC
/// energy prices, drawn after the topology from the same stream.
inline SlotInput scale_input(std::size_t classes, std::size_t frontends,
                             std::size_t dcs, Rng& rng) {
  SlotInput input;
  input.arrival_rate.assign(classes, std::vector<double>(frontends, 0.0));
  for (auto& row : input.arrival_rate) {
    for (double& r : row) r = rng.uniform(50.0, 350.0);
  }
  input.price.assign(dcs, 0.0);
  for (double& p : input.price) p = rng.uniform(0.03, 0.11);
  input.slot_seconds = 3600.0;
  return input;
}

/// The anchor-profile dispatch LP for (topo, input): one routing
/// variable per (class, front-end, DC) arc capped by the arrival rate,
/// flow rows per (class, front-end), linearized capacity rows per DC —
/// the same block-angular shape (and size) OptimizedPolicy's largest
/// per-profile LP has, built directly so solver-level scaling can be
/// measured without the profile search around it.
inline LinearProgram anchor_dispatch_lp(const Topology& topo,
                                        const SlotInput& input) {
  const std::size_t K = topo.classes.size();
  const std::size_t S = topo.num_frontends();
  const std::size_t L = topo.datacenters.size();
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      for (std::size_t l = 0; l < L; ++l) {
        const double value =
            topo.classes[k].tuf.utility_at_level(0) -
            topo.distance_miles[s][l] *
                topo.classes[k].transfer_cost_per_mile -
            input.price[l] * topo.datacenters[l].energy_per_request_kwh[k];
        lp.add_variable(0.0, input.arrival_rate[k][s],
                        value * input.slot_seconds);
      }
    }
  }
  for (std::size_t k = 0; k < K; ++k) {
    for (std::size_t s = 0; s < S; ++s) {
      std::vector<std::pair<int, double>> terms;
      for (std::size_t l = 0; l < L; ++l) {
        terms.emplace_back(static_cast<int>((k * S + s) * L + l), 1.0);
      }
      lp.add_constraint(terms, Relation::kLe, input.arrival_rate[k][s]);
    }
  }
  for (std::size_t l = 0; l < L; ++l) {
    const auto& dc = topo.datacenters[l];
    std::vector<std::pair<int, double>> terms;
    for (std::size_t k = 0; k < K; ++k) {
      const double inv_rate = 1.0 / (dc.server_capacity * dc.service_rate[k]);
      for (std::size_t s = 0; s < S; ++s) {
        terms.emplace_back(static_cast<int>((k * S + s) * L + l), inv_rate);
      }
    }
    lp.add_constraint(terms, Relation::kLe,
                      0.9 * static_cast<double>(dc.num_servers));
  }
  return lp;
}

struct HeadToHead {
  RunResult optimized;
  RunResult balanced;
};

/// Runs the two headline policies over the same slot range. With
/// `workers > 1` (0 = hardware concurrency) the two runs execute
/// concurrently AND each run fans its slots across the worker budget via
/// SlotController::RunOptions — plans stay byte-identical to the serial
/// run (see SlotController::RunOptions). `workers == 1` is the plain
/// serial harness the figure benches always supported.
inline HeadToHead run_head_to_head(const Scenario& scenario,
                                   std::size_t slots,
                                   std::size_t first_slot = 0,
                                   std::size_t workers = 1) {
  const SlotController controller(scenario);
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  HeadToHead out;
  const std::size_t resolved = bounded_workers(workers, 2 * slots);
  if (resolved <= 1) {
    out.optimized = controller.run(optimized, slots, first_slot);
    out.balanced = controller.run(balanced, slots, first_slot);
    return out;
  }
  // Split the budget between the two independent policy runs; each half
  // further parallelizes across its slots.
  const SlotController::RunOptions half{(resolved + 1) / 2};
  ThreadPool pool(2);
  parallel_for(pool, 2, [&](std::size_t side) {
    if (side == 0) {
      out.optimized = controller.run(optimized, slots, first_slot, half);
    } else {
      out.balanced = controller.run(balanced, slots, first_slot, half);
    }
  });
  return out;
}

inline void print_profit_series(const std::string& title,
                                const HeadToHead& duel) {
  std::vector<double> hours;
  for (std::size_t t = 0; t < duel.optimized.slots.size(); ++t) {
    hours.push_back(static_cast<double>(t));
  }
  std::printf("%s", render_multi_series(
                        title, hours, {"Optimized $", "Balanced $"},
                        {duel.optimized.net_profit_series(),
                         duel.balanced.net_profit_series()},
                        "hour")
                        .c_str());
  std::printf(
      "totals: Optimized $%.2f | Balanced $%.2f | improvement %.1f%%\n\n",
      duel.optimized.total.net_profit(), duel.balanced.total.net_profit(),
      100.0 * (duel.optimized.total.net_profit() -
               duel.balanced.total.net_profit()) /
          std::max(1e-9, std::abs(duel.balanced.total.net_profit())));
}

inline void print_topology_tables(const Topology& topo) {
  {
    TextTable t({"class", "TUF levels $", "sub-deadlines s",
                 "transfer $/req-mile"});
    for (const auto& c : topo.classes) {
      std::string levels, deadlines;
      for (std::size_t q = 0; q < c.tuf.levels(); ++q) {
        levels += (q ? " / " : "") + format_double(c.tuf.utility_at_level(q), 4);
        deadlines += (q ? " / " : "") + format_double(c.tuf.sub_deadline(q), 3);
      }
      t.add_row({c.name, levels, deadlines,
                 format_double(c.transfer_cost_per_mile * 1e6, 3) + "e-6"});
    }
    std::printf("%s\n", t.render().c_str());
  }
  {
    std::vector<std::string> header{"data center", "servers", "PUE"};
    for (const auto& c : topo.classes) header.push_back("mu(" + c.name + ")");
    for (const auto& c : topo.classes) {
      header.push_back("kWh(" + c.name + ")");
    }
    TextTable t(std::move(header));
    for (const auto& dc : topo.datacenters) {
      std::vector<std::string> row{dc.name, std::to_string(dc.num_servers),
                                   format_double(dc.pue, 2)};
      for (double mu : dc.service_rate) row.push_back(format_double(mu, 0));
      for (double e : dc.energy_per_request_kwh) {
        row.push_back(format_double(e, 4));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
  }
  {
    std::vector<std::string> header{"distance (miles)"};
    for (const auto& dc : topo.datacenters) header.push_back(dc.name);
    TextTable t(std::move(header));
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      std::vector<std::string> row{topo.frontends[s].name};
      for (double d : topo.distance_miles[s]) {
        row.push_back(format_double(d, 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
  }
}

}  // namespace palb::bench
