#pragma once

// Shared helpers for the figure-reproduction harnesses: run a scenario
// under the two headline policies and print paper-style series.

#include <cstdio>
#include <string>
#include <vector>

#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace palb::bench {

struct HeadToHead {
  RunResult optimized;
  RunResult balanced;
};

/// Runs the two headline policies over the same slot range. With
/// `workers > 1` (0 = hardware concurrency) the two runs execute
/// concurrently AND each run fans its slots across the worker budget via
/// SlotController::RunOptions — plans stay byte-identical to the serial
/// run (see SlotController::RunOptions). `workers == 1` is the plain
/// serial harness the figure benches always supported.
inline HeadToHead run_head_to_head(const Scenario& scenario,
                                   std::size_t slots,
                                   std::size_t first_slot = 0,
                                   std::size_t workers = 1) {
  const SlotController controller(scenario);
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  HeadToHead out;
  const std::size_t resolved = bounded_workers(workers, 2 * slots);
  if (resolved <= 1) {
    out.optimized = controller.run(optimized, slots, first_slot);
    out.balanced = controller.run(balanced, slots, first_slot);
    return out;
  }
  // Split the budget between the two independent policy runs; each half
  // further parallelizes across its slots.
  const SlotController::RunOptions half{(resolved + 1) / 2};
  ThreadPool pool(2);
  parallel_for(pool, 2, [&](std::size_t side) {
    if (side == 0) {
      out.optimized = controller.run(optimized, slots, first_slot, half);
    } else {
      out.balanced = controller.run(balanced, slots, first_slot, half);
    }
  });
  return out;
}

inline void print_profit_series(const std::string& title,
                                const HeadToHead& duel) {
  std::vector<double> hours;
  for (std::size_t t = 0; t < duel.optimized.slots.size(); ++t) {
    hours.push_back(static_cast<double>(t));
  }
  std::printf("%s", render_multi_series(
                        title, hours, {"Optimized $", "Balanced $"},
                        {duel.optimized.net_profit_series(),
                         duel.balanced.net_profit_series()},
                        "hour")
                        .c_str());
  std::printf(
      "totals: Optimized $%.2f | Balanced $%.2f | improvement %.1f%%\n\n",
      duel.optimized.total.net_profit(), duel.balanced.total.net_profit(),
      100.0 * (duel.optimized.total.net_profit() -
               duel.balanced.total.net_profit()) /
          std::max(1e-9, std::abs(duel.balanced.total.net_profit())));
}

inline void print_topology_tables(const Topology& topo) {
  {
    TextTable t({"class", "TUF levels $", "sub-deadlines s",
                 "transfer $/req-mile"});
    for (const auto& c : topo.classes) {
      std::string levels, deadlines;
      for (std::size_t q = 0; q < c.tuf.levels(); ++q) {
        levels += (q ? " / " : "") + format_double(c.tuf.utility_at_level(q), 4);
        deadlines += (q ? " / " : "") + format_double(c.tuf.sub_deadline(q), 3);
      }
      t.add_row({c.name, levels, deadlines,
                 format_double(c.transfer_cost_per_mile * 1e6, 3) + "e-6"});
    }
    std::printf("%s\n", t.render().c_str());
  }
  {
    std::vector<std::string> header{"data center", "servers", "PUE"};
    for (const auto& c : topo.classes) header.push_back("mu(" + c.name + ")");
    for (const auto& c : topo.classes) {
      header.push_back("kWh(" + c.name + ")");
    }
    TextTable t(std::move(header));
    for (const auto& dc : topo.datacenters) {
      std::vector<std::string> row{dc.name, std::to_string(dc.num_servers),
                                   format_double(dc.pue, 2)};
      for (double mu : dc.service_rate) row.push_back(format_double(mu, 0));
      for (double e : dc.energy_per_request_kwh) {
        row.push_back(format_double(e, 4));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
  }
  {
    std::vector<std::string> header{"distance (miles)"};
    for (const auto& dc : topo.datacenters) header.push_back(dc.name);
    TextTable t(std::move(header));
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      std::vector<std::string> row{topo.frontends[s].name};
      for (double d : topo.distance_miles[s]) {
        row.push_back(format_double(d, 0));
      }
      t.add_row(std::move(row));
    }
    std::printf("%s\n", t.render().c_str());
  }
}

}  // namespace palb::bench
