// Figure 6 reproduction (§VI): hourly net profits of Optimized vs
// Balanced across the 24-hour WorldCup study with one-level TUFs and the
// Fig. 1 price curves (Tables IV-VII parameters printed first).
// Paper claim: Optimized significantly outperforms Balanced all day,
// with the two converging when the traces tail off.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  std::printf("Tables IV-VII — WorldCup study parameters:\n");
  bench::print_topology_tables(sc.topology);

  // workers=0: fan the two policies and their 24 slots across all cores
  // (plans are byte-identical to the serial harness).
  const bench::HeadToHead duel = bench::run_head_to_head(sc, 24, 0, 0);
  bench::print_profit_series(
      "Fig. 6 — net profits obtained by two approaches (hourly)", duel);

  // Per-hour win/loss bookkeeping (paper: similar profits only at the
  // quiet end of the traces).
  int wins = 0;
  for (std::size_t t = 0; t < 24; ++t) {
    if (duel.optimized.slots[t].net_profit() >
        duel.balanced.slots[t].net_profit() + 1e-9) {
      ++wins;
    }
  }
  std::printf("hours where Optimized strictly wins: %d / 24\n", wins);
  return 0;
}
