// Ablation: control-slot length. The paper fixes T = 1 hour ("the same
// as the electricity prices changing frequency"). This bench re-plans
// the WorldCup day at 2h / 1h / 30min / 15min slots (demand linearly
// interpolated between hourly means, prices held hourly) and reports the
// day ledger — quantifying what faster re-planning is worth when demand
// moves smoothly and what it costs in solver invocations.

#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

namespace {

Scenario resampled_scenario(std::size_t factor) {
  Scenario sc = paper::worldcup_study();
  for (auto& per_class : sc.arrivals) {
    for (auto& trace : per_class) trace = trace.resampled(factor);
  }
  // Prices stay hourly: repeat each hour's price `factor` times.
  std::vector<PriceTrace> prices;
  for (const auto& p : sc.prices) {
    std::vector<double> values;
    values.reserve(p.size() * factor);
    for (std::size_t h = 0; h < p.size(); ++h) {
      for (std::size_t f = 0; f < factor; ++f) values.push_back(p.at(h));
    }
    prices.emplace_back(p.location(), std::move(values));
  }
  sc.prices = std::move(prices);
  sc.slot_seconds = 3600.0 / static_cast<double>(factor);
  sc.validate();
  return sc;
}

}  // namespace

int main() {
  std::printf("slot-length ablation (WorldCup day)\n\n");
  TextTable t({"slot length", "slots/day", "Optimized $/day",
               "Balanced $/day", "plan solves", "planning ms/day"});
  struct Case {
    const char* label;
    std::size_t factor;
  };
  for (const Case c : {Case{"2 h", 1} /* see below */, Case{"1 h", 1},
                       Case{"30 min", 2}, Case{"15 min", 4}}) {
    Scenario sc;
    std::size_t slots;
    if (c.label[0] == '2') {
      // 2-hour slots: average adjacent hours, halve the slot count.
      sc = paper::worldcup_study();
      for (auto& per_class : sc.arrivals) {
        for (auto& trace : per_class) {
          std::vector<double> coarse;
          for (std::size_t h = 0; h < 24; h += 2) {
            coarse.push_back(0.5 * (trace.at(h) + trace.at(h + 1)));
          }
          trace = RateTrace(trace.name() + "@2h", std::move(coarse));
        }
      }
      std::vector<PriceTrace> prices;
      for (const auto& p : sc.prices) {
        std::vector<double> coarse;
        for (std::size_t h = 0; h < 24; h += 2) {
          coarse.push_back(0.5 * (p.at(h) + p.at(h + 1)));
        }
        prices.emplace_back(p.location(), std::move(coarse));
      }
      sc.prices = std::move(prices);
      sc.slot_seconds = 7200.0;
      slots = 12;
    } else {
      sc = resampled_scenario(c.factor);
      slots = 24 * c.factor;
    }

    const auto start = std::chrono::steady_clock::now();
    const bench::HeadToHead duel = bench::run_head_to_head(sc, slots);
    const auto stop = std::chrono::steady_clock::now();
    t.add_row(
        {c.label, std::to_string(slots),
         format_double(duel.optimized.total.net_profit(), 2),
         format_double(duel.balanced.total.net_profit(), 2),
         std::to_string(2 * slots),
         format_double(
             std::chrono::duration<double, std::milli>(stop - start).count(),
             0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: profits agree to within ~0.01%% across slot lengths —\n"
      "with hourly prices and hour-scale diurnal demand there is nothing\n"
      "for faster re-planning to exploit, which supports the paper's\n"
      "choice of T = 1 h; planning cost, meanwhile, scales linearly with\n"
      "the slot count. (The 2 h row averages adjacent hours and so faces\n"
      "slightly flattened bursts — its tiny edge is workload smoothing,\n"
      "not better control.) Sub-hour slots would start paying off only\n"
      "with sub-hour price or demand dynamics, e.g. the OU spot prices\n"
      "of ext_week_run sampled finer.\n");
  return 0;
}
