// Overload-hardening chaos bench (docs/OVERLOAD.md): the serving stack
// replayed through the canned overload schedule — a 3x demand surge
// under suppressed publishes with the planner stalled mid-surge — plus
// a seeded random schedule with every chaos kind enabled, as a second,
// differently-shaped storm. Each run must keep the dispatcher serving:
// zero stalled routes, decisions byte-identical across driver-thread
// counts, stale-plan exposure within the TTL, and a bounded shed
// fraction. The canned run is emitted as the palb-chaos-v1 section of
// BENCH_palb.json (or argv[1]); argv[2] overrides the timed-pass
// seconds (0 = skip it, which is what the ctest smoke uses so the
// whole report stays deterministic).

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "fault/fault.hpp"
#include "serve/chaos.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

constexpr std::size_t kSlots = 24;
constexpr std::size_t kTtlSlots = 3;
constexpr double kMaxShedFraction = 0.5;

struct NamedRun {
  std::string schedule;
  serve::ChaosReport report;
};

serve::ChaosReport run_one(const Scenario& sc, const FaultSchedule& schedule,
                           double timed_seconds) {
  BalancedPolicy policy;
  serve::ChaosOptions opt;
  opt.num_slots = kSlots;
  opt.stale_plan_ttl_slots = kTtlSlots;
  opt.timed_seconds = timed_seconds;
  return run_chaos(sc, schedule, policy, opt);
}

FaultSchedule random_storm(const Topology& topology) {
  fault_gen::Options opt;
  opt.slots = kSlots;
  opt.fault_rate = 0.35;
  opt.planner_stalls = true;
  opt.publish_delays = true;
  opt.demand_surges = true;
  return fault_gen::generate(topology, /*seed=*/1002, opt);
}

/// The acceptance gates, applied to every storm. Returns false (and
/// prints why) when one fails.
bool gate(const std::string& name, const serve::ChaosReport& r) {
  bool ok = true;
  if (r.stalled_routes != 0) {
    std::fprintf(stderr, "FAIL[%s]: %llu routes stalled on a plan swap "
                         "(contract: zero)\n",
                 name.c_str(),
                 static_cast<unsigned long long>(r.stalled_routes));
    ok = false;
  }
  if (!r.decisions_identical) {
    std::fprintf(stderr, "FAIL[%s]: decisions diverge across driver "
                         "thread counts\n", name.c_str());
    ok = false;
  }
  if (r.max_stale_slots > kTtlSlots) {
    std::fprintf(stderr, "FAIL[%s]: stale-plan exposure %zu slots "
                         "exceeds the TTL (%zu)\n",
                 name.c_str(), r.max_stale_slots, kTtlSlots);
    ok = false;
  }
  if (r.shed_fraction() > kMaxShedFraction) {
    std::fprintf(stderr, "FAIL[%s]: shed fraction %.4f exceeds %.2f — "
                         "degradation is not graceful\n",
                 name.c_str(), r.shed_fraction(), kMaxShedFraction);
    ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_palb.json");
  const double timed_seconds = argc > 2 ? std::atof(argv[2]) : 0.25;
  const Scenario sc = paper::worldcup_study();

  std::printf("---- chaos: overload-hardened serving under fault "
              "schedules (worldcup, %zu slots, TTL %zu) ----\n",
              kSlots, kTtlSlots);

  std::vector<NamedRun> runs;
  runs.push_back({"canned-chaos",
                  run_one(sc, fault_gen::canned_chaos(), timed_seconds)});
  runs.push_back({"random:1002", run_one(sc, random_storm(sc.topology),
                                         /*timed_seconds=*/0.0)});

  TextTable t({"schedule", "faulted", "stalls", "delays", "ttl-esc",
               "shed", "stale-max", "route-stalls", "identical"});
  bool all_ok = true;
  for (const NamedRun& run : runs) {
    const serve::ChaosReport& r = run.report;
    t.add_row({run.schedule, std::to_string(r.faulted_slots),
               std::to_string(r.stalled_solves),
               std::to_string(r.delayed_publishes),
               std::to_string(r.ttl_escalations),
               format_double(r.shed_fraction(), 4),
               std::to_string(r.max_stale_slots),
               std::to_string(r.stalled_routes),
               r.decisions_identical ? "yes" : "NO"});
    all_ok = gate(run.schedule, r) && all_ok;
  }
  std::printf("%s", t.render().c_str());

  const serve::ChaosReport& canned = runs.front().report;
  benchjson::ChaosResult result;
  result.scenario = "worldcup";
  result.schedule = runs.front().schedule;
  result.slots = canned.slots;
  result.faulted_slots = canned.faulted_slots;
  result.stalled_solves = canned.stalled_solves;
  result.delayed_publishes = canned.delayed_publishes;
  result.ttl_escalations = canned.ttl_escalations;
  result.fallback_rungs = canned.fallback_rungs;
  result.requests = canned.requests;
  result.routed = canned.routed;
  result.no_route = canned.no_route;
  result.shed = canned.shed;
  result.shed_fraction = canned.shed_fraction();
  result.max_stale_slots = canned.max_stale_slots;
  result.mean_stale_slots = canned.mean_stale_slots;
  result.stale_plan_ttl_slots = kTtlSlots;
  result.stalled_routes = canned.stalled_routes;
  result.decisions_identical = canned.decisions_identical;
  result.thread_counts = {1, 2, 4};
  result.timed_qps = canned.timed_qps;
  result.p50_ns = canned.p50_ns;
  result.p99_ns = canned.p99_ns;
  result.p999_ns = canned.p999_ns;
  result.max_ns = canned.max_ns;
  result.latency_samples = canned.latency_samples;
  benchjson::write_file(out_path,
                        benchjson::with_chaos_section(out_path, result));
  std::printf("wrote %s\n", out_path.c_str());

  return all_ok ? 0 : 1;
}
