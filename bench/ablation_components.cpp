// Ablation: where does Optimized's edge come from? Re-run the WorldCup
// study with individual awareness channels removed from the optimizer's
// objective (it still gets *charged* for everything by the accounting):
//   - price-blind: energy priced at the day's mean everywhere
//   - wire-blind: transfer costs zeroed in the objective
//   - both-blind: only TUF/capacity management remains
// The gap between each variant and the full optimizer prices each
// awareness channel in dollars per day.

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

/// Wraps OptimizedPolicy but blinds selected cost channels in the inputs
/// it shows the inner optimizer; evaluation always uses the true inputs.
class BlindedPolicy : public Policy {
 public:
  BlindedPolicy(bool price_blind, bool wire_blind, std::string name)
      : price_blind_(price_blind),
        wire_blind_(wire_blind),
        name_(std::move(name)) {}

  const std::string& name() const override { return name_; }

  DispatchPlan plan_slot(const Topology& topology,
                         const SlotInput& input) override {
    Topology topo = topology;
    SlotInput shown = input;
    if (wire_blind_) {
      for (auto& cls : topo.classes) cls.transfer_cost_per_mile = 0.0;
    }
    if (price_blind_) {
      double mean = 0.0;
      for (double p : input.price) mean += p;
      mean /= static_cast<double>(input.price.size());
      for (double& p : shown.price) p = mean;
    }
    return inner_.plan_slot(topo, shown);
  }

 private:
  bool price_blind_;
  bool wire_blind_;
  std::string name_;
  OptimizedPolicy inner_;
};

}  // namespace

int main() {
  Scenario sc = paper::worldcup_study();
  // The WorldCup study's web-search-scale energy bill (~1% of profit) is
  // too small to separate the price channel; give the requests a
  // compute-heavy footprint so all three awareness channels are material.
  for (auto& dc : sc.topology.datacenters) {
    for (double& e : dc.energy_per_request_kwh) e *= 25.0;
  }
  const SlotController controller(sc);

  OptimizedPolicy full;
  BlindedPolicy price_blind(true, false, "price-blind");
  BlindedPolicy wire_blind(false, true, "wire-blind");
  BlindedPolicy both_blind(true, true, "both-blind");
  BalancedPolicy balanced;

  TextTable t({"policy", "net profit $/day", "vs full $", "energy $",
               "transfer $"});
  const RunResult full_run = controller.run(full, 24);
  auto report = [&](const char* label, const RunResult& run) {
    t.add_row({label, format_double(run.total.net_profit(), 2),
               format_double(run.total.net_profit() -
                                 full_run.total.net_profit(),
                             2),
               format_double(run.total.energy_cost, 2),
               format_double(run.total.transfer_cost, 2)});
  };
  report("full Optimized", full_run);
  report("price-blind", controller.run(price_blind, 24));
  report("wire-blind", controller.run(wire_blind, 24));
  report("both-blind", controller.run(both_blind, 24));
  report("Balanced", controller.run(balanced, 24));
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: each blinded channel costs real dollars; even the "
      "both-blind variant (pure TUF/capacity management) still clears "
      "Balanced, decomposing the paper's headline gap into its causes.\n");
  return 0;
}
