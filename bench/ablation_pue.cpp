// Ablation (paper §II-A extension): power-usage-effectiveness. The paper
// notes its model "can be extended by adding a parameter describing a
// data center's PUE to account for the energy consumed by cooling". This
// bench sweeps an asymmetric PUE on one data center of the WorldCup
// study and shows the optimizer steering load away from the inefficient
// facility as its effective energy price rises.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  std::printf("PUE ablation — datacenter1's cooling overhead sweeps up\n\n");
  TextTable t({"PUE(dc1)", "Optimized $/day", "Balanced $/day",
               "req-h -> dc1 (opt)", "req-h -> dc3 (opt)"});
  for (double pue : {1.0, 1.3, 1.6, 2.0, 2.5}) {
    Scenario sc = paper::worldcup_study();
    // Compute-heavy energy footprint (see ablation_components.cpp) so the
    // cooling overhead is a first-order cost.
    for (auto& dc : sc.topology.datacenters) {
      for (double& e : dc.energy_per_request_kwh) e *= 25.0;
    }
    sc.topology.datacenters[0].pue = pue;
    const bench::HeadToHead duel = bench::run_head_to_head(sc, 24);
    double to_dc1 = 0.0, to_dc3 = 0.0;
    for (const auto& plan : duel.optimized.plans) {
      for (std::size_t k = 0; k < 3; ++k) {
        to_dc1 += plan.class_dc_rate(k, 0);
        to_dc3 += plan.class_dc_rate(k, 2);
      }
    }
    t.add_row({format_double(pue, 1),
               format_double(duel.optimized.total.net_profit(), 2),
               format_double(duel.balanced.total.net_profit(), 2),
               format_double(to_dc1, 0), format_double(to_dc3, 0)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: Balanced ignores PUE entirely (it sorts by raw price), "
      "so its profit decays faster; Optimized re-routes around the "
      "inefficient facility.\n");
  return 0;
}
