// Figure 8 reproduction (§VII): hourly net profits on the Google-trace
// study with two-level step-downward TUFs, two data centers priced by
// the Houston / Mountain View curves in the volatile 14:00-19:00 window
// (Tables VIII-XI printed first). Includes the paper-faithful big-M NLP
// solver path next to the production profile-enumeration path.

#include <cstdio>

#include "bench_common.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::google_study();
  std::printf("Tables VIII-XI — Google study parameters:\n");
  bench::print_topology_tables(sc.topology);
  std::printf("prices 14:00-19:00 $/kWh:\n");
  for (const auto& p : sc.prices) {
    std::printf("  %-20s", p.location().c_str());
    for (std::size_t h = 0; h < 6; ++h) std::printf(" %.3f", p.at(h));
    std::printf("\n");
  }
  std::printf("\n");

  const bench::HeadToHead duel = bench::run_head_to_head(sc, 6, 0, 0);
  bench::print_profit_series(
      "Fig. 8 — net profits with two-step TUFs (hourly)", duel);

  // Paper methodology cross-check: the big-M NLP formulation solved by
  // the in-house augmented-Lagrangian solver ("near optimal").
  const SlotController controller(sc);
  BigMNlpPolicy::Options opt;
  opt.multistarts = 4;
  opt.nlp.max_outer = 20;
  opt.nlp.max_inner = 150;
  BigMNlpPolicy nlp(opt);
  const RunResult nlp_run = controller.run(nlp, 6);
  std::printf(
      "BigM-NLP (paper's solver path): $%.2f total "
      "(%.1f%% of the enumerator's optimum)\n",
      nlp_run.total.net_profit(),
      100.0 * nlp_run.total.net_profit() /
          std::max(1e-9, duel.optimized.total.net_profit()));
  return 0;
}
