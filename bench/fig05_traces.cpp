// Figure 5 reproduction (§VI): the request traces collected at the four
// front-end servers over the 24-hour WorldCup-like day (request type 1;
// types 2 and 3 are the same trace time-shifted, exactly as the paper
// synthesizes them).

#include <cstdio>

#include "core/paper_scenarios.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  for (std::size_t s = 0; s < sc.topology.num_frontends(); ++s) {
    std::vector<double> hours, rates;
    for (std::size_t h = 0; h < 24; ++h) {
      hours.push_back(static_cast<double>(h));
      rates.push_back(sc.arrivals[0][s].at(h));
    }
    std::printf("%s\n",
                render_series("Fig. 5(" + std::string(1, char('a' + s)) +
                                  ") — requests at front-end " +
                                  std::to_string(s + 1),
                              hours, rates, "hour", "req/s")
                    .c_str());
  }

  // The type-synthesis shift: same mass, shifted peaks.
  TextTable t({"type", "mean req/s (fe1)", "peak req/s (fe1)",
               "peak hour (fe1)"});
  for (std::size_t k = 0; k < 3; ++k) {
    const auto& trace = sc.arrivals[k][0];
    std::size_t best = 0;
    for (std::size_t h = 1; h < 24; ++h) {
      if (trace.at(h) > trace.at(best)) best = h;
    }
    t.add_row({"request" + std::to_string(k + 1),
               format_double(trace.mean(), 1), format_double(trace.peak(), 1),
               std::to_string(best)});
  }
  std::printf("%s", t.render().c_str());
  return 0;
}
