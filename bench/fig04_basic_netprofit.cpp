// Figure 4 reproduction (§V): net profit of Optimized vs Balanced on the
// synthetic basic study, low and high arrival sets (Tables II and III).
// Paper claims: Optimized achieves a much higher net profit in both
// regimes, and under the high set processes ~16% more requests while
// covering the extra energy cost.

#include <cstdio>

#include "bench_common.hpp"
#include "cloud/accounting.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

namespace {

void run_set(paper::ArrivalSet set, const char* label) {
  const Scenario sc = paper::basic_synthetic(set);
  std::printf("---- Fig. 4 (%s arrival set) ----\n", label);

  // Table II: the arrival matrix.
  {
    TextTable t({"front-end", "request1 #/s", "request2 #/s",
                 "request3 #/s"});
    const SlotInput input = sc.slot_input(0);
    for (std::size_t s = 0; s < 4; ++s) {
      t.add_row("frontend" + std::to_string(s + 1),
                {input.arrival_rate[0][s], input.arrival_rate[1][s],
                 input.arrival_rate[2][s]},
                1);
    }
    std::printf("Table II (%s):\n%s\n", label, t.render().c_str());
  }

  const bench::HeadToHead duel = bench::run_head_to_head(sc, 1);
  TextTable result({"policy", "net profit $/h", "revenue $", "energy $",
                    "requests completed", "completed %"});
  for (const auto& [name, run] :
       {std::pair<const char*, const RunResult&>{"Optimized",
                                                 duel.optimized},
        {"Balanced", duel.balanced}}) {
    result.add_row({name, format_double(run.total.net_profit(), 2),
                    format_double(run.total.revenue, 2),
                    format_double(run.total.energy_cost, 2),
                    format_double(run.total.completed_requests, 0),
                    format_double(100.0 * run.total.completed_fraction(), 2)});
  }
  std::printf("%s", result.render().c_str());
  const double extra = 100.0 *
                       (duel.optimized.total.completed_requests -
                        duel.balanced.total.completed_requests) /
                       std::max(1.0, duel.balanced.total.completed_requests);
  std::printf("Optimized processed %.1f%% more requests than Balanced "
              "(paper, high set: ~16%%)\n\n",
              extra);
}

}  // namespace

int main() {
  // Table III once (shared by both sets).
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  std::printf("Table III — data center parameters:\n");
  bench::print_topology_tables(sc.topology);
  std::printf("fixed prices $/kWh: %.3f / %.3f / %.3f\n\n",
              sc.slot_input(0).price[0], sc.slot_input(0).price[1],
              sc.slot_input(0).price[2]);

  run_set(paper::ArrivalSet::kLow, "low");
  run_set(paper::ArrivalSet::kHigh, "high");
  return 0;
}
