// Extension bench: wires cost time. The paper's Eq. 3 charges distance
// in dollars only; over 1000-2500 miles the speed of light adds
// 15-40 ms of round trip — the same order as the sub-deadlines. Sweep a
// per-mile propagation delay on the WorldCup study and compare
//   blind  : plan as if wires were instant (the paper), settle honestly
//   aware  : value each origin's flow at the band its worst-case total
//            delay (propagation + queue target) actually lands in
// plus what the blind planner *believes* it earns — the overclaim.

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  std::printf(
      "network-latency ablation — WorldCup day; fiber RTT ~1.6e-5 "
      "s/mile\n\n");
  TextTable t({"s/mile", "RTT @2000mi ms", "aware $/day", "blind $/day",
               "blind believes $", "Balanced $/day"});
  for (double latency : {0.0, 0.8e-5, 1.6e-5, 3.2e-5, 6.4e-5}) {
    Scenario sc = paper::worldcup_study();
    sc.topology.network_latency_s_per_mile = latency;
    Scenario blind_world = sc;
    blind_world.topology.network_latency_s_per_mile = 0.0;

    OptimizedPolicy aware;
    OptimizedPolicy blind;
    BalancedPolicy balanced;
    double aware_total = 0.0, blind_total = 0.0, blind_claim = 0.0,
           balanced_total = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
      const SlotInput input = sc.slot_input(h);
      aware_total +=
          evaluate_plan(sc.topology, input, aware.plan_slot(sc.topology, input))
              .net_profit();
      const DispatchPlan blind_plan =
          blind.plan_slot(blind_world.topology, input);
      blind_total +=
          evaluate_plan(sc.topology, input, blind_plan).net_profit();
      blind_claim +=
          evaluate_plan(blind_world.topology, input, blind_plan)
              .net_profit();
      balanced_total += evaluate_plan(sc.topology, input,
                                      balanced.plan_slot(sc.topology, input))
                            .net_profit();
    }
    t.add_row({format_double(latency * 1e5, 1) + "e-5",
               format_double(latency * 2000.0 * 1000.0, 1),
               format_double(aware_total, 2), format_double(blind_total, 2),
               format_double(blind_claim, 2),
               format_double(balanced_total, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: the latency-blind planner books revenue its distant\n"
      "traffic can no longer earn (the gap between 'believes' and its\n"
      "honest column); the aware planner re-values per origin, shifts\n"
      "load toward nearby facilities or tighter queue bands, and keeps\n"
      "most of the profit as wires slow down.\n");
  return 0;
}
