// Figure 7 reproduction (§VI): where request1 traffic goes, hour by
// hour, under both policies. Paper claims: datacenter2 (farthest from
// every front-end, so the worst wire bill) receives much less request1
// traffic than datacenter1/datacenter3 under Optimized, though not zero.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  const bench::HeadToHead duel = bench::run_head_to_head(sc, 24);

  std::vector<double> hours;
  for (std::size_t t = 0; t < 24; ++t) hours.push_back(static_cast<double>(t));

  for (std::size_t l = 0; l < 3; ++l) {
    std::printf(
        "%s\n",
        render_multi_series(
            "Fig. 7(" + std::string(1, char('a' + l)) +
                ") — request1 allocated to datacenter" + std::to_string(l + 1),
            hours, {"Optimized req/s", "Balanced req/s"},
            {duel.optimized.class_dc_rate_series(0, l),
             duel.balanced.class_dc_rate_series(0, l)},
            "hour")
            .c_str());
  }

  TextTable totals({"policy", "-> dc1 req-h", "-> dc2 req-h",
                    "-> dc3 req-h"});
  for (const auto& [name, run] :
       {std::pair<const char*, const RunResult&>{"Optimized",
                                                 duel.optimized},
        {"Balanced", duel.balanced}}) {
    double sums[3] = {0, 0, 0};
    for (const auto& plan : run.plans) {
      for (std::size_t l = 0; l < 3; ++l) sums[l] += plan.class_dc_rate(0, l);
    }
    totals.add_row(name, {sums[0], sums[1], sums[2]}, 0);
  }
  std::printf("%s", totals.render().c_str());
  std::printf(
      "paper: dc2 is the farthest; Optimized sends it far less request1 "
      "traffic than dc1/dc3.\n");
  return 0;
}
