// Extension bench: the whole control story as one event-driven run. The
// paper evaluates each slot in isolation at steady state; this closed
// loop keeps queues alive across hourly boundaries (backlog carries
// over, power-downs migrate or drop it), bills per-request, and can run
// the controller causally on measured rates. Three questions:
//   1. how much does the steady-state-per-slot analytic ledger overstate?
//   2. what do the hourly boundary transients / carried backlog cost?
//   3. what does causal (measured-rate) control give up vs the oracle?

#include <cstdio>

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "sim/closed_loop.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  const std::size_t slots = 24;

  // Analytic chain (the paper's accounting).
  OptimizedPolicy analytic_policy;
  const RunResult analytic =
      SlotController(sc).run(analytic_policy, slots);

  // Closed loop, oracle rates.
  OptimizedPolicy loop_policy;
  ClosedLoopSimulator::Options oracle_opt;
  oracle_opt.seed = 2024;
  const ClosedLoopResult oracle =
      ClosedLoopSimulator(oracle_opt).run(sc, loop_policy, slots);

  // Closed loop, causal (previous slot's measured rates).
  OptimizedPolicy causal_policy;
  ClosedLoopSimulator::Options causal_opt = oracle_opt;
  causal_opt.planning_input =
      ClosedLoopSimulator::Options::PlanningInput::kMeasuredPreviousSlot;
  const ClosedLoopResult causal =
      ClosedLoopSimulator(causal_opt).run(sc, causal_policy, slots);

  // Closed loop, Balanced baseline (oracle rates).
  BalancedPolicy balanced_policy;
  const ClosedLoopResult balanced =
      ClosedLoopSimulator(oracle_opt).run(sc, balanced_policy, slots);

  // Sampling error of the single-path numbers above: independent
  // replications fanned across every core (one policy clone per path).
  OptimizedPolicy rep_policy;
  const std::vector<ClosedLoopResult> reps =
      ClosedLoopSimulator(oracle_opt).run_replications(sc, rep_policy,
                                                       slots, 8);
  RunningStats rep_profit;
  for (const auto& r : reps) rep_profit.add(r.total_profit());

  TextTable t({"accounting / controller", "day profit $", "completions",
               "dropped", "stranded"});
  t.add_row({"analytic per-slot (paper)",
             format_double(analytic.total.net_profit(), 2),
             format_double(analytic.total.completed_requests, 0), "-",
             "-"});
  auto add = [&](const char* name, const ClosedLoopResult& r) {
    std::uint64_t completions = 0, dropped = 0;
    for (const auto& s : r.slots) {
      completions += s.completions;
      dropped += s.dropped;
    }
    t.add_row({name, format_double(r.total_profit(), 2),
               std::to_string(completions), std::to_string(dropped),
               std::to_string(r.stranded)});
  };
  add("closed loop, oracle rates", oracle);
  add("closed loop, measured rates", causal);
  add("closed loop, Balanced", balanced);
  std::printf("%s", t.render().c_str());
  std::printf(
      "\noracle profit across %zu replications: $%.2f +/- %.2f (stddev)\n",
      reps.size(), rep_profit.mean(), rep_profit.stddev());

  std::printf(
      "\nper-request vs mean-delay gap: %.1f%% of the analytic ledger\n"
      "survives per-request accounting with live queues; the causal\n"
      "controller keeps %.1f%% of the closed-loop oracle.\n",
      100.0 * oracle.total_profit() / analytic.total.net_profit(),
      100.0 * causal.total_profit() / oracle.total_profit());
  std::printf(
      "Reading: boundary transients and carried backlog are second-order\n"
      "(completions track the analytic count); the first-order gap is\n"
      "per-request TUF accounting — individual sojourns straddle band\n"
      "edges the slot *mean* stays inside of, which is precisely why\n"
      "deadline_margin and the percentile metric exist.\n");
  return 0;
}
