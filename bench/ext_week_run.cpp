// Extension bench: a full week of operation. The paper's studies stop at
// 24 hours with fixed historical prices; a deployed controller faces
// week-scale structure (weekend demand dips) and stochastic spot prices.
// This bench drives 168 hourly slots with OU-noise prices per location
// and a weekly demand pattern, comparing the oracle optimizer, the
// causal (seasonal-forecast, hedged) operator and the Balanced baseline.

#include <cstdio>

#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "forecast/forecasting_controller.hpp"
#include "market/price_generator.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace palb;

namespace {

Scenario week_scenario() {
  Scenario sc = paper::worldcup_study();
  const std::size_t hours = 14 * 24;  // week of history + scored week

  // Demand: diurnal base with a weekend dip and fresh noise all week.
  Rng rng(20130707);
  workload::WorldCupParams base;
  base.base_rate = 25.0;
  base.daily_peak = 115.0;
  base.match_boost = 1.4;
  base.burst_sigma = 0.12;
  base.slots = hours;
  const auto frontends = workload::worldcup_frontends(4, base, rng);
  for (std::size_t k = 0; k < 3; ++k) {
    for (std::size_t s = 0; s < 4; ++s) {
      std::vector<double> values;
      values.reserve(hours);
      const RateTrace shifted = frontends[s].shifted(3 * k);
      for (std::size_t h = 0; h < hours; ++h) {
        const std::size_t day = (h / 24) % 7;
        const double weekend = (day == 5 || day == 6) ? 0.7 : 1.0;
        values.push_back(shifted.at(h) * weekend);
      }
      sc.arrivals[k][s] = RateTrace("week", std::move(values));
    }
  }

  // Prices: OU spot noise around each location's character.
  OuPriceGenerator::Params ou;
  ou.reversion = 0.4;
  ou.volatility = 0.006;
  const double means[3] = {0.055, 0.085, 0.042};
  const double amps[3] = {0.05, 0.045, 0.015};
  sc.prices.clear();
  for (int l = 0; l < 3; ++l) {
    ou.mean = means[l];
    ou.diurnal_amplitude = amps[l];
    OuPriceGenerator gen(ou);
    Rng price_rng(1000u + static_cast<std::uint64_t>(l));
    sc.prices.push_back(
        gen.generate("loc" + std::to_string(l), hours, price_rng));
  }
  sc.validate();
  return sc;
}

}  // namespace

int main() {
  const Scenario sc = week_scenario();
  const std::size_t first = 7 * 24;  // one week of forecaster history
  const std::size_t slots = 7 * 24;  // scored week

  OptimizedPolicy oracle_policy;
  BalancedPolicy balanced_policy;
  const RunResult oracle =
      SlotController(sc).run(oracle_policy, slots, first);
  const RunResult balanced =
      SlotController(sc).run(balanced_policy, slots, first);

  ForecastingController::Options opt;
  opt.forecast_inflation = 1.15;
  opt.warmup_slots = 7 * 24;
  // Weekly period: a daily seasonal would predict Saturday from Friday
  // and Monday from Sunday, missing the weekend dip in both directions.
  ForecastingController causal_controller(sc, SeasonalNaiveForecaster(168),
                                          opt);
  OptimizedPolicy causal_policy;
  const ForecastRunResult causal =
      causal_controller.run(causal_policy, slots, first);
  // Apples-to-apples: the baseline run causally on the same forecasts.
  BalancedPolicy causal_balanced_policy;
  const ForecastRunResult causal_balanced =
      causal_controller.run(causal_balanced_policy, slots, first);

  TextTable t({"operator", "week net profit $", "energy $", "transfer $",
               "completed %"});
  auto add = [&](const char* name, const RunResult& run) {
    t.add_row({name, format_double(run.total.net_profit(), 2),
               format_double(run.total.energy_cost, 2),
               format_double(run.total.transfer_cost, 2),
               format_double(100.0 * run.total.completed_fraction(), 2)});
  };
  add("oracle Optimized", oracle);
  add("causal Optimized (weekly-seasonal +15%)", causal.run);
  add("oracle Balanced", balanced);
  add("causal Balanced (same forecasts)", causal_balanced.run);
  std::printf("%s", t.render().c_str());
  std::printf(
      "note: 'oracle' rows see the true arrival rates; 'causal' rows\n"
      "plan from forecasts and settle against reality.\n");

  // Daily breakdown of the oracle run.
  std::printf("\nper-day oracle vs balanced net profit ($):\n");
  TextTable days({"day", "oracle", "balanced", "edge %"});
  for (std::size_t d = 0; d < 7; ++d) {
    double o = 0.0, b = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
      o += oracle.slots[d * 24 + h].net_profit();
      b += balanced.slots[d * 24 + h].net_profit();
    }
    days.add_row({std::to_string(d + 1), format_double(o, 0),
                  format_double(b, 0),
                  format_double(100.0 * (o - b) / std::max(1.0, b), 1)});
  }
  std::printf("%s", days.render().c_str());
  return 0;
}
