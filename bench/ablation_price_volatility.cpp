// Ablation: how much of the optimizer's edge is price arbitrage, and how
// does it scale with market volatility? Re-run the WorldCup day with
// OU-generated prices whose diurnal amplitude and noise sweep from flat
// to wild (all locations share the mean, so *only* spread matters), on
// an energy-heavy variant where the electricity bill is first-order.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"
#include "market/price_generator.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  std::printf(
      "price-volatility ablation — WorldCup day, energy-heavy requests,\n"
      "OU prices with common mean and sweeping spread\n\n");
  TextTable t({"amplitude $/kWh", "OU sigma", "price spread (max-min)",
               "Optimized $/day", "Balanced $/day", "edge %"});
  struct Case {
    double amplitude;
    double volatility;
  };
  for (const Case c : {Case{0.0, 0.0}, Case{0.01, 0.002}, Case{0.03, 0.006},
                       Case{0.06, 0.012}, Case{0.12, 0.024}}) {
    Scenario sc = paper::worldcup_study();
    for (auto& dc : sc.topology.datacenters) {
      for (double& e : dc.energy_per_request_kwh) e *= 25.0;
    }
    OuPriceGenerator::Params ou;
    ou.mean = 0.06;
    ou.diurnal_amplitude = c.amplitude;
    ou.volatility = c.volatility;
    ou.reversion = 0.5;
    sc.prices.clear();
    for (int l = 0; l < 3; ++l) {
      // Distinct peak hours per location create the cross-location
      // spread the dispatcher can arbitrage.
      ou.peak_hour = 11.0 + 4.0 * l;
      OuPriceGenerator gen(ou);
      Rng rng(400u + static_cast<std::uint64_t>(l));
      sc.prices.push_back(gen.generate("loc" + std::to_string(l), 24, rng));
    }
    sc.validate();

    double spread = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
      double lo = 1e9, hi = -1e9;
      for (const auto& p : sc.prices) {
        lo = std::min(lo, p.at(h));
        hi = std::max(hi, p.at(h));
      }
      spread = std::max(spread, hi - lo);
    }

    const bench::HeadToHead duel = bench::run_head_to_head(sc, 24);
    const double opt = duel.optimized.total.net_profit();
    const double bal = duel.balanced.total.net_profit();
    t.add_row({format_double(c.amplitude, 3), format_double(c.volatility, 3),
               format_double(spread, 3), format_double(opt, 2),
               format_double(bal, 2),
               format_double(100.0 * (opt - bal) / std::abs(bal), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: the relative edge is nearly volatility-invariant "
      "(17%% -> 14%%),\n"
      "and that is the finding: Balanced *is* price-sorted, so raw price\n"
      "arbitrage is available to both controllers and mostly cancels out\n"
      "of the comparison (Balanced even gains absolute dollars as the\n"
      "spread widens). What the baseline cannot price is the coupling —\n"
      "wire costs and TUF bands pull against chasing the cheapest grid —\n"
      "which is why the gap persists even at zero spread and why the\n"
      "price-blind variant in ablation_components loses so little.\n");
  return 0;
}
