// google-benchmark microbenchmarks for the in-house solver substrate:
// simplex throughput vs problem size, MILP branch-and-bound on
// knapsacks, augmented-Lagrangian NLP convergence cost, and the big-M
// constraint-system evaluation hot path.

#include <benchmark/benchmark.h>

#include "solver/milp.hpp"
#include "solver/nlp.hpp"
#include "solver/simplex.hpp"
#include "solver/step_tuf_bigm.hpp"
#include "util/rng.hpp"

namespace {

using namespace palb;

LinearProgram random_lp(int vars, int rows, std::uint64_t seed) {
  Rng rng(seed);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < vars; ++j) {
    lp.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 3.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < vars; ++j) terms.emplace_back(j, rng.uniform(0.0, 2.0));
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 8.0));
  }
  return lp;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LinearProgram lp = random_lp(n, n, 42);
  const SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexSolve)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> ints;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < n; ++i) {
    const int v = lp.add_variable(0.0, 1.0, rng.uniform(1.0, 10.0));
    ints.push_back(v);
    row.emplace_back(v, rng.uniform(1.0, 6.0));
  }
  lp.add_constraint(row, Relation::kLe, static_cast<double>(n));
  const MilpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp, ints));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(6)->Arg(10)->Arg(14);

void BM_AugLagCircle(benchmark::State& state) {
  NlpProblem p;
  p.dimension = 2;
  p.lower = {-2.0, -2.0};
  p.upper = {2.0, 2.0};
  p.objective = [](const std::vector<double>& x) { return -(x[0] + x[1]); };
  p.inequalities.push_back([](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] - 1.0;
  });
  const AugLagSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, {0.0, 0.0}));
  }
}
BENCHMARK(BM_AugLagCircle);

void BM_BigMConstraintEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> utilities, deadlines;
  for (std::size_t q = 0; q < n; ++q) {
    utilities.push_back(static_cast<double>(10 * (n - q)));
    deadlines.push_back(static_cast<double>(q + 1));
  }
  const StepTufBigM bigm(utilities, deadlines);
  double delay = 0.1;
  for (auto _ : state) {
    delay = delay < static_cast<double>(n) ? delay + 0.07 : 0.1;
    benchmark::DoNotOptimize(bigm.admitted_level(delay));
  }
}
BENCHMARK(BM_BigMConstraintEval)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
