// google-benchmark microbenchmarks for the in-house solver substrate:
// simplex throughput vs problem size, MILP branch-and-bound on
// knapsacks, augmented-Lagrangian NLP convergence cost, and the big-M
// constraint-system evaluation hot path.
//
// Besides the benchmark registry this binary carries the CI pivot
// regression gate (custom main, see below):
//
//   micro_solver --check-pivots tools/fixtures/pivot_baseline.json
//   micro_solver --write-pivots tools/fixtures/pivot_baseline.json
//
// The check mode plans the deterministic fig06 (worldcup) scenario
// serially, compares the total simplex pivot count against the
// checked-in baseline (>10% growth fails), and micro-asserts that dense
// LP *construction* stays sub-dominant to solving (the add_term path
// regressing to quadratic once cost more than the solves it fed).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "solver/decomposed.hpp"
#include "solver/milp.hpp"
#include "solver/nlp.hpp"
#include "solver/simplex.hpp"
#include "solver/step_tuf_bigm.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace {

using namespace palb;

LinearProgram random_lp(int vars, int rows, std::uint64_t seed) {
  Rng rng(seed);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  for (int j = 0; j < vars; ++j) {
    lp.add_variable(0.0, rng.uniform(0.5, 4.0), rng.uniform(-1.0, 3.0));
  }
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < vars; ++j) terms.emplace_back(j, rng.uniform(0.0, 2.0));
    lp.add_constraint(terms, Relation::kLe, rng.uniform(2.0, 8.0));
  }
  return lp;
}

void BM_SimplexSolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const LinearProgram lp = random_lp(n, n, 42);
  const SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_SimplexSolve)->RangeMultiplier(2)->Range(4, 64)->Complexity();

void BM_MilpKnapsack(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(7);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  std::vector<int> ints;
  std::vector<std::pair<int, double>> row;
  for (int i = 0; i < n; ++i) {
    const int v = lp.add_variable(0.0, 1.0, rng.uniform(1.0, 10.0));
    ints.push_back(v);
    row.emplace_back(v, rng.uniform(1.0, 6.0));
  }
  lp.add_constraint(row, Relation::kLe, static_cast<double>(n));
  const MilpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(lp, ints));
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(6)->Arg(10)->Arg(14);

void BM_AugLagCircle(benchmark::State& state) {
  NlpProblem p;
  p.dimension = 2;
  p.lower = {-2.0, -2.0};
  p.upper = {2.0, 2.0};
  p.objective = [](const std::vector<double>& x) { return -(x[0] + x[1]); };
  p.inequalities.push_back([](const std::vector<double>& x) {
    return x[0] * x[0] + x[1] * x[1] - 1.0;
  });
  const AugLagSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p, {0.0, 0.0}));
  }
}
BENCHMARK(BM_AugLagCircle);

void BM_BigMConstraintEval(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<double> utilities, deadlines;
  for (std::size_t q = 0; q < n; ++q) {
    utilities.push_back(static_cast<double>(10 * (n - q)));
    deadlines.push_back(static_cast<double>(q + 1));
  }
  const StepTufBigM bigm(utilities, deadlines);
  double delay = 0.1;
  for (auto _ : state) {
    delay = delay < static_cast<double>(n) ? delay + 0.07 : 0.1;
    benchmark::DoNotOptimize(bigm.admitted_level(delay));
  }
}
BENCHMARK(BM_BigMConstraintEval)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------------
// Pivot regression gate (CI bench-smoke job; not part of the benchmark
// registry and deliberately not a ctest — timings and counters belong in
// the perf lane, not the correctness lane).

constexpr const char* kPivotSchema = "palb-pivot-baseline-v1";
constexpr double kPivotHeadroom = 0.10;  // fail past +10% vs baseline

struct PivotCounts {
  std::uint64_t simplex_pivots = 0;
  std::uint64_t phase1_skips = 0;
  std::uint64_t basis_warm_hits = 0;
  std::uint64_t profiles_examined = 0;
  std::uint64_t sparse_price_skips = 0;
};

struct DecompCounts {
  std::uint64_t master_iterations = 0;
  std::uint64_t subproblem_solves = 0;
  /// Decomposed x bitwise equals the monolithic x on the fixture (the
  /// crossover contract); a hard failure, not a headroom check.
  bool identical = false;
};

// Plans the fig06 worldcup study (24 slots) serially with the default
// OptimizedPolicy and returns the run's solver counters. Every count is
// deterministic: the pivot path of each LP depends only on (topology,
// input, profile) — see SimplexSolver and OptimizedPolicy docs — so the
// baseline can be an exact machine-independent number and the headroom
// exists only to absorb deliberate algorithm tweaks.
PivotCounts measure_fig06_pivots() {
  const Scenario scenario = paper::worldcup_study();
  SlotController controller(scenario);
  OptimizedPolicy policy;
  const RunResult run = controller.run(policy, 24);
  PivotCounts c;
  c.simplex_pivots = run.stats.lp_iterations;
  c.phase1_skips = run.stats.phase1_skips;
  c.basis_warm_hits = run.stats.basis_warm_hits;
  c.profiles_examined = run.stats.profiles_examined;
  c.sparse_price_skips = run.stats.sparse_price_skips;
  return c;
}

// Canned block-angular fixture for the Dantzig-Wolfe gate: 8 flow-style
// blocks of 4 bounded variables coupled by 3 dense capacity-style rows —
// the dispatcher's profile-LP shape at a size where column generation
// does several pricing rounds. Deterministic (fixed seed), so the round
// and subproblem counts are exact machine-independent numbers.
LinearProgram decomposition_fixture() {
  Rng rng(4242);
  LinearProgram lp;
  lp.set_objective_sense(Sense::kMaximize);
  constexpr int kBlocks = 8;
  constexpr int kVarsPerBlock = 4;
  for (int b = 0; b < kBlocks; ++b) {
    std::vector<std::pair<int, double>> terms;
    for (int v = 0; v < kVarsPerBlock; ++v) {
      terms.emplace_back(
          lp.add_variable(0.0, rng.uniform(1.0, 5.0), rng.uniform(0.5, 3.0)),
          1.0);
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(1.5, 6.0));
  }
  for (int c = 0; c < 3; ++c) {
    std::vector<std::pair<int, double>> terms;
    for (int j = 0; j < lp.num_variables(); ++j) {
      terms.emplace_back(j, rng.uniform(0.2, 1.5));
    }
    lp.add_constraint(terms, Relation::kLe, rng.uniform(4.0, 10.0));
  }
  return lp;
}

DecompCounts measure_decomposition_fixture() {
  const LinearProgram lp = decomposition_fixture();
  const DecomposedSolver dec;
  const LpSolution sol = dec.solve(lp);
  const LpSolution mono = SimplexSolver().solve(lp);
  DecompCounts c;
  c.master_iterations =
      static_cast<std::uint64_t>(dec.stats().master_iterations);
  c.subproblem_solves =
      static_cast<std::uint64_t>(dec.stats().subproblem_solves);
  c.identical = dec.stats().decomposed &&
                sol.status == LpStatus::kOptimal &&
                mono.status == LpStatus::kOptimal && sol.x == mono.x;
  return c;
}

// Dense-model construction must stay sub-dominant to solving. The bound
// is generous (the O(n^2) add_term this guards against took seconds
// here), so it holds on slow CI runners without going flaky.
bool model_build_stays_subdominant() {
  using clock = std::chrono::steady_clock;
  constexpr int kTerms = 20000;
  const auto start = clock::now();
  LinearProgram lp;
  for (int j = 0; j < kTerms; ++j) lp.add_variable(0.0, 1.0, 1.0);
  const int row = lp.add_constraint(Relation::kLe, 1.0);
  for (int j = 0; j < kTerms; ++j) lp.add_term(row, j, 1.0);
  const double ms =
      std::chrono::duration<double, std::milli>(clock::now() - start)
          .count();
  const bool ok = ms < 250.0;
  std::printf("%s: %d-term dense row built in %.1f ms (budget 250 ms)\n",
              ok ? "ok" : "FAIL", kTerms, ms);
  return ok;
}

int write_pivot_baseline(const std::string& path) {
  const PivotCounts c = measure_fig06_pivots();
  const DecompCounts d = measure_decomposition_fixture();
  Json doc = Json::object();
  doc.set("schema", Json(std::string(kPivotSchema)));
  doc.set("scenario", Json(std::string("worldcup")));
  doc.set("slots", Json(24.0));
  doc.set("simplex_pivots", Json(static_cast<double>(c.simplex_pivots)));
  doc.set("phase1_skips", Json(static_cast<double>(c.phase1_skips)));
  doc.set("basis_warm_hits", Json(static_cast<double>(c.basis_warm_hits)));
  doc.set("profiles_examined",
          Json(static_cast<double>(c.profiles_examined)));
  doc.set("sparse_price_skips",
          Json(static_cast<double>(c.sparse_price_skips)));
  doc.set("dw_master_iterations",
          Json(static_cast<double>(d.master_iterations)));
  doc.set("dw_subproblem_solves",
          Json(static_cast<double>(d.subproblem_solves)));
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  os << doc.dump(2) << "\n";
  std::printf("wrote %s (simplex_pivots=%llu)\n", path.c_str(),
              static_cast<unsigned long long>(c.simplex_pivots));
  return os ? 0 : 2;
}

int check_pivot_baseline(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const Json doc = Json::parse(buf.str());
  if (doc.at("schema").as_string() != kPivotSchema) {
    std::fprintf(stderr, "unexpected schema in %s\n", path.c_str());
    return 2;
  }
  const auto baseline =
      static_cast<std::uint64_t>(doc.at("simplex_pivots").as_number());
  const PivotCounts c = measure_fig06_pivots();
  const double limit =
      static_cast<double>(baseline) * (1.0 + kPivotHeadroom);
  std::printf(
      "fig06 pivots: measured=%llu baseline=%llu limit=%.0f "
      "(phase1_skips=%llu basis_warm_hits=%llu profiles=%llu "
      "sparse_price_skips=%llu)\n",
      static_cast<unsigned long long>(c.simplex_pivots),
      static_cast<unsigned long long>(baseline), limit,
      static_cast<unsigned long long>(c.phase1_skips),
      static_cast<unsigned long long>(c.basis_warm_hits),
      static_cast<unsigned long long>(c.profiles_examined),
      static_cast<unsigned long long>(c.sparse_price_skips));
  bool ok = true;
  // Dantzig-Wolfe gate on the canned block fixture: the crossover must
  // reproduce the monolithic point bitwise (hard), and the round /
  // subproblem counts get the same +10% headroom as the pivot count (a
  // regression here means column generation started spinning).
  {
    const DecompCounts d = measure_decomposition_fixture();
    const auto base_rounds = static_cast<std::uint64_t>(
        doc.at("dw_master_iterations").as_number());
    const auto base_subs = static_cast<std::uint64_t>(
        doc.at("dw_subproblem_solves").as_number());
    std::printf(
        "dw fixture: master_iterations=%llu (baseline %llu) "
        "subproblem_solves=%llu (baseline %llu) identical=%s\n",
        static_cast<unsigned long long>(d.master_iterations),
        static_cast<unsigned long long>(base_rounds),
        static_cast<unsigned long long>(d.subproblem_solves),
        static_cast<unsigned long long>(base_subs),
        d.identical ? "yes" : "NO");
    if (!d.identical) {
      std::fprintf(stderr,
                   "FAIL: decomposed solve no longer reproduces the "
                   "monolithic point on the fixture\n");
      ok = false;
    }
    if (static_cast<double>(d.master_iterations) >
            static_cast<double>(base_rounds) * (1.0 + kPivotHeadroom) ||
        static_cast<double>(d.subproblem_solves) >
            static_cast<double>(base_subs) * (1.0 + kPivotHeadroom)) {
      std::fprintf(stderr,
                   "FAIL: Dantzig-Wolfe effort regressed more than %.0f%% "
                   "over the baseline; if intentional, refresh with "
                   "--write-pivots\n",
                   100.0 * kPivotHeadroom);
      ok = false;
    }
  }
  if (static_cast<double>(c.simplex_pivots) > limit) {
    std::fprintf(stderr,
                 "FAIL: simplex pivot count regressed more than %.0f%% "
                 "over the checked-in baseline; if intentional, refresh "
                 "with --write-pivots\n",
                 100.0 * kPivotHeadroom);
    ok = false;
  } else if (static_cast<double>(c.simplex_pivots) <
             static_cast<double>(baseline) * (1.0 - kPivotHeadroom)) {
    std::printf(
        "note: pivots improved more than %.0f%%; consider refreshing "
        "the baseline with --write-pivots\n",
        100.0 * kPivotHeadroom);
  }
  if (!model_build_stays_subdominant()) ok = false;
  std::printf("%s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

}  // namespace

// Custom main instead of benchmark_main: peel off the pivot-gate flags,
// then hand everything else to google-benchmark unchanged.
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check-pivots" || arg == "--write-pivots") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a baseline path\n", arg.c_str());
        return 2;
      }
      const std::string path = argv[i + 1];
      return arg == "--check-pivots" ? check_pivot_baseline(path)
                                     : write_pivot_baseline(path);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
