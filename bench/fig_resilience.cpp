// Resilience extension (docs/RESILIENCE.md): net profit as the fault
// rate rises. Each sweep point draws a deterministic schedule from
// fault_gen (same seed, rising per-slot fault probability), drives
// OptimizedPolicy through the ResilientController's fallback ladder,
// and reports the profit retained against two anchors: the fault-free
// run (what the faults cost) and the shed-all baseline (what the ladder
// saves). The sweep is emitted as palb-bench-v1 workloads into
// BENCH_palb.json (or argv[1]) — `fallback_rungs`, `repairs`, and
// `faulted_slots` per point — so CI can track ladder behavior the same
// way it tracks solver counters.

#include <chrono>
#include <cstdio>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "bench_json.hpp"
#include "cloud/accounting.hpp"
#include "cloud/plan.hpp"
#include "core/paper_scenarios.hpp"
#include "core/plan_json.hpp"
#include "fault/fault.hpp"
#include "fault/resilient_controller.hpp"

using namespace palb;

namespace {

constexpr std::size_t kSlots = 24;
constexpr std::uint64_t kSeed = 7;

FaultSchedule sweep_schedule(const Scenario& sc, double fault_rate) {
  fault_gen::Options gopt;
  gopt.slots = kSlots;
  gopt.fault_rate = fault_rate;
  return fault_gen::generate(sc.topology, kSeed, gopt);
}

struct SweepPoint {
  benchjson::WorkloadResult report;
  RunResult run;  ///< the parallel arm, for the rung histogram
};

SweepPoint sweep_point(const Scenario& sc, double fault_rate,
                       std::size_t workers) {
  const FaultSchedule schedule = sweep_schedule(sc, fault_rate);
  const ResilientController controller(sc, schedule);
  OptimizedPolicy::Options popt;
  popt.parallel = false;

  SweepPoint out;
  out.report.name = "fig_resilience_r" + format_double(fault_rate, 2);
  out.report.scenario = "basic-low";
  out.report.slots = kSlots;
  out.report.workers = workers;

  using Clock = std::chrono::steady_clock;
  const auto elapsed_ms = [](Clock::time_point since) {
    return std::chrono::duration<double, std::milli>(Clock::now() - since)
        .count();
  };

  ResilientController::Options serial_opt;
  serial_opt.workers = 1;
  OptimizedPolicy serial_policy(popt);
  auto t0 = Clock::now();
  const RunResult serial =
      controller.run(serial_policy, kSlots, 0, serial_opt);
  out.report.serial_ms = elapsed_ms(t0);

  ResilientController::Options parallel_opt;
  parallel_opt.workers = workers;
  OptimizedPolicy parallel_policy(popt);
  t0 = Clock::now();
  out.run = controller.run(parallel_policy, kSlots, 0, parallel_opt);
  out.report.parallel_ms = elapsed_ms(t0);

  out.report.plans_identical =
      plan_json::run_to_json(serial).dump() ==
          plan_json::run_to_json(out.run).dump() &&
      serial.fallback_rungs == out.run.fallback_rungs;
  out.report.solver = out.run.stats;
  out.report.faulted_slots = out.run.faulted_slots;
  out.report.repairs = out.run.total_repairs();
  out.report.fallback_rungs = out.run.fallback_rungs;
  return out;
}

double shed_all_profit(const Scenario& sc, const FaultSchedule& schedule) {
  double profit = 0.0;
  for (std::size_t t = 0; t < kSlots; ++t) {
    const FaultedSlot world = schedule.materialize(sc, t);
    profit += evaluate_plan(world.topology, world.input,
                            DispatchPlan::zero(world.topology))
                  .net_profit();
  }
  return profit;
}

std::string rung_histogram(const std::vector<int>& rungs) {
  std::map<int, std::size_t> histogram;
  for (const int r : rungs) ++histogram[r];
  std::string out;
  for (const auto& [rung, count] : histogram) {
    if (!out.empty()) out += " ";
    out += std::string(to_string(static_cast<FallbackRung>(rung))) + "x" +
           std::to_string(count);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_palb.json");
  const Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kLow);
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::vector<double> rates = {0.0, 0.05, 0.15, 0.30, 0.50};

  std::printf("---- Resilience: net profit vs fault rate "
              "(basic-low, %zu slots, seed %llu) ----\n",
              kSlots, static_cast<unsigned long long>(kSeed));

  std::vector<benchjson::WorkloadResult> results;
  TextTable t({"fault rate", "faulted slots", "repairs", "rungs used",
               "net profit $", "vs fault-free %", "shed-all $",
               "plans identical"});
  double fault_free = 0.0;
  for (const double rate : rates) {
    SweepPoint point = sweep_point(sc, rate, hardware);
    const double profit = point.run.total.net_profit();
    if (rate == 0.0) fault_free = profit;
    t.add_row({format_double(rate, 2),
               std::to_string(point.report.faulted_slots),
               std::to_string(point.report.repairs),
               rung_histogram(point.run.fallback_rungs),
               format_double(profit, 2),
               format_double(
                   fault_free != 0.0 ? 100.0 * profit / fault_free : 100.0,
                   1),
               format_double(shed_all_profit(sc, sweep_schedule(sc, rate)),
                             2),
               point.report.plans_identical ? "yes" : "NO"});
    results.push_back(std::move(point.report));
  }
  std::printf("%s", t.render().c_str());

  benchjson::write_file(
      out_path, benchjson::document(hardware, hardware, false, results));
  std::printf("wrote %s\n", out_path.c_str());

  for (const auto& r : results) {
    if (!r.plans_identical) {
      std::fprintf(stderr,
                   "FAIL: %s parallel plans diverge from the 1-worker "
                   "baseline\n",
                   r.name.c_str());
      return 1;
    }
  }
  return 0;
}
