// Online-serving throughput bench (docs/SERVING.md): the dispatcher
// fast path under a driver-thread sweep. For each thread count the
// harness rebuilds the full serving stack — AsyncPlanner solving the
// scenario on a background thread, Dispatcher compiling routing tables
// off the live PlanHandle — and runs the closed-loop QPS driver for a
// fixed wall-clock window, so the table shows how routing throughput
// scales with drivers while plans hot-swap mid-stream. After each timed
// window a fixed-mode pass replays 2^16 stream indices and compares the
// recorded decisions against the 1-thread baseline: a single differing
// word fails the bench. The widest sweep point is emitted as the
// palb-qps-v1 section of BENCH_palb.json (or argv[1]); argv[2] overrides
// the per-point seconds (CI smoke uses a short window).

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/balanced_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "fault/fault.hpp"
#include "serve/async_planner.hpp"
#include "serve/dispatcher.hpp"
#include "serve/load_driver.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

constexpr std::size_t kSlots = 24;
constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kVerifyRequests = 1u << 16;

struct SweepPoint {
  serve::QpsReport timed;
  std::vector<std::uint64_t> decisions;  ///< fixed-mode replay
};

SweepPoint sweep_point(const Scenario& sc, std::size_t threads,
                       double seconds) {
  PlanHandle live;
  serve::Dispatcher dispatcher(sc.topology, live);
  serve::AsyncPlanner planner(sc, FaultSchedule{}, live);
  BalancedPolicy policy;
  std::future<RunResult> run = planner.solve_async(policy, kSlots);
  if (serve::wait_for_version(dispatcher, 1, 120.0) == 0) {
    run.get();
    throw NumericalError("no plan published within 120 s");
  }
  const serve::RequestStream stream =
      serve::RequestStream::compile(sc.topology, sc.slot_input(0), kSeed);

  SweepPoint out;
  serve::QpsOptions timed_opt;
  timed_opt.threads = threads;
  timed_opt.seconds = seconds;
  out.timed = run_qps(dispatcher, stream, timed_opt);

  run.get();  // quiesce the plan stream before the determinism replay
  dispatcher.refresh();
  serve::QpsOptions fixed_opt;
  fixed_opt.threads = threads;
  fixed_opt.total_requests = kVerifyRequests;
  fixed_opt.record_decisions = true;
  out.decisions = run_qps(dispatcher, stream, fixed_opt).decisions;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path =
      argc > 1 ? argv[1] : std::string("BENCH_palb.json");
  const double seconds = argc > 2 ? std::atof(argv[2]) : 1.0;
  const Scenario sc = paper::worldcup_study();
  const std::size_t hardware =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::vector<std::size_t> sweep = {1};
  for (std::size_t n = 2; n < hardware; n *= 2) sweep.push_back(n);
  if (hardware > 1) sweep.push_back(hardware);

  std::printf("---- QPS: routing throughput vs driver threads "
              "(worldcup, %zu slots, %.2f s/point, seed %llu) ----\n",
              kSlots, seconds, static_cast<unsigned long long>(kSeed));

  TextTable t({"threads", "decisions/s", "p50 ns", "p99 ns", "p999 ns",
               "rebuilds", "stalls", "identical"});
  std::vector<SweepPoint> points;
  bool all_identical = true;
  bool all_stall_free = true;
  for (const std::size_t threads : sweep) {
    points.push_back(sweep_point(sc, threads, seconds));
    const SweepPoint& p = points.back();
    const bool identical = p.decisions == points.front().decisions;
    all_identical = all_identical && identical;
    all_stall_free =
        all_stall_free && p.timed.dispatcher.stalled_routes == 0;
    t.add_row({std::to_string(threads), format_double(p.timed.qps(), 0),
               format_double(p.timed.p50_ns, 0),
               format_double(p.timed.p99_ns, 0),
               format_double(p.timed.p999_ns, 0),
               std::to_string(p.timed.dispatcher.rebuilds),
               std::to_string(p.timed.dispatcher.stalled_routes),
               identical ? "yes" : "NO"});
  }
  std::printf("%s", t.render().c_str());

  const serve::QpsReport& widest = points.back().timed;
  benchjson::QpsResult result;
  result.scenario = "worldcup";
  result.slots = kSlots;
  result.threads = widest.threads;
  result.requests = widest.requests;
  result.routed = widest.routed;
  result.no_route = widest.no_route;
  result.elapsed_seconds = widest.elapsed_seconds;
  result.qps = widest.qps();
  result.p50_ns = widest.p50_ns;
  result.p90_ns = widest.p90_ns;
  result.p99_ns = widest.p99_ns;
  result.p999_ns = widest.p999_ns;
  result.max_ns = widest.max_ns;
  result.latency_samples = widest.latency_samples;
  result.min_plan_version = widest.min_plan_version;
  result.max_plan_version = widest.max_plan_version;
  result.rebuilds = widest.dispatcher.rebuilds;
  result.refresh_skips = widest.dispatcher.refresh_skips;
  result.stalled_routes = widest.dispatcher.stalled_routes;
  result.identical_across_threads = all_identical;
  benchjson::write_file(out_path,
                        benchjson::with_qps_section(out_path, result));
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: routing decisions diverge from the "
                         "1-thread baseline\n");
    return 1;
  }
  if (!all_stall_free) {
    std::fprintf(stderr,
                 "FAIL: a route stalled on a plan swap (contract: zero)\n");
    return 1;
  }
  return 0;
}
