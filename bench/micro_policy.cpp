// google-benchmark microbenchmarks for the control-plane hot path: one
// slot solve of each policy on the paper's scenarios, plus plan
// evaluation (the accounting pass).

#include <benchmark/benchmark.h>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/bigm_nlp_policy.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"

namespace {

using namespace palb;

void BM_BalancedSlot_WorldCup(benchmark::State& state) {
  const Scenario sc = paper::worldcup_study();
  const SlotInput input = sc.slot_input(12);
  BalancedPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.plan_slot(sc.topology, input));
  }
}
BENCHMARK(BM_BalancedSlot_WorldCup);

void BM_OptimizedSlot_WorldCup(benchmark::State& state) {
  const Scenario sc = paper::worldcup_study();
  const SlotInput input = sc.slot_input(12);
  OptimizedPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.plan_slot(sc.topology, input));
  }
}
BENCHMARK(BM_OptimizedSlot_WorldCup);

void BM_OptimizedSlot_Google(benchmark::State& state) {
  const Scenario sc = paper::google_study();
  const SlotInput input = sc.slot_input(2);
  OptimizedPolicy policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.plan_slot(sc.topology, input));
  }
}
BENCHMARK(BM_OptimizedSlot_Google);

void BM_OptimizedSlot_SerialSweep(benchmark::State& state) {
  const Scenario sc = paper::worldcup_study();
  const SlotInput input = sc.slot_input(12);
  OptimizedPolicy::Options opt;
  opt.parallel = false;
  OptimizedPolicy policy(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.plan_slot(sc.topology, input));
  }
}
BENCHMARK(BM_OptimizedSlot_SerialSweep);

void BM_BigMNlpSlot_Google(benchmark::State& state) {
  const Scenario sc = paper::google_study();
  const SlotInput input = sc.slot_input(2);
  BigMNlpPolicy::Options opt;
  opt.multistarts = 1;
  opt.nlp.max_outer = 8;
  opt.nlp.max_inner = 60;
  BigMNlpPolicy policy(opt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.plan_slot(sc.topology, input));
  }
}
BENCHMARK(BM_BigMNlpSlot_Google);

void BM_EvaluatePlan(benchmark::State& state) {
  const Scenario sc = paper::worldcup_study();
  const SlotInput input = sc.slot_input(12);
  OptimizedPolicy policy;
  const DispatchPlan plan = policy.plan_slot(sc.topology, input);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluate_plan(sc.topology, input, plan));
  }
}
BENCHMARK(BM_EvaluatePlan);

}  // namespace
