// Ablation (beyond the paper): energy-model shape. The paper bills
// energy per *request* (Google's ~kWh/search figure), which makes idle
// capacity free and right-sizing irrelevant. Real servers draw
// substantial static power, so this bench sweeps a per-server idle draw
// on the WorldCup study and shows (a) the profit surface, (b) how many
// servers the optimizer keeps powered, and (c) consolidation: load
// concentrates into fewer facilities as idle power grows.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  std::printf(
      "power-model ablation — per-server idle draw on the WorldCup "
      "study\n\n");
  TextTable t({"idle kW/server", "Optimized $/day", "Balanced $/day",
               "mean servers on (opt)", "mean servers on (bal)",
               "completed % (opt)"});
  // Scale note: in this scenario's (paper-derived) units a busy server's
  // *dynamic* draw is ~600 kWh/h (mu ~140 req/s x ~1.2e-3 kWh/req), so
  // the sweep spans "idle is free" to "idle costs several times a busy
  // server's dynamic energy".
  for (double idle : {0.0, 150.0, 600.0, 2400.0, 9600.0, 38400.0}) {
    Scenario sc = paper::worldcup_study();
    for (auto& dc : sc.topology.datacenters) dc.idle_power_kw = idle;
    const bench::HeadToHead duel = bench::run_head_to_head(sc, 24);
    double opt_servers = 0.0, bal_servers = 0.0;
    for (std::size_t h = 0; h < 24; ++h) {
      opt_servers += duel.optimized.slots[h].servers_on;
      bal_servers += duel.balanced.slots[h].servers_on;
    }
    t.add_row({format_double(idle, 0),
               format_double(duel.optimized.total.net_profit(), 2),
               format_double(duel.balanced.total.net_profit(), 2),
               format_double(opt_servers / 24.0, 1),
               format_double(bal_servers / 24.0, 1),
               format_double(
                   100.0 * duel.optimized.total.completed_fraction(), 1)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: with idle power in the ledger the optimizer's\n"
      "minimal-server realization becomes an economic decision — at\n"
      "high draws it sheds marginal traffic whose revenue no longer\n"
      "covers the servers it would keep awake, while Balanced keeps\n"
      "paying for its static allocation.\n");
  return 0;
}
