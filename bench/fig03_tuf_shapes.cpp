// Figure 3 reproduction: the three TUF archetypes of §III-B1 —
// (a) constant value before a deadline, (b) monotonic non-increasing,
// (c) multi-level step-downward — rendered from the StepTuf model that
// the whole system plans with. (Figure 2, the system architecture, is
// the repository itself; see README.md.)

#include <cstdio>

#include "cloud/tuf.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

void render(const char* title, const StepTuf& tuf, double horizon) {
  std::vector<double> xs, ys;
  for (int i = 1; i <= 40; ++i) {
    const double delay = horizon * static_cast<double>(i) / 40.0;
    xs.push_back(delay);
    ys.push_back(tuf.utility(delay));
  }
  std::printf("%s\n", render_series(title, xs, ys, "delay s", "$/req").c_str());
}

}  // namespace

int main() {
  render("Fig. 3(a) — constant TUF (one level)",
         StepTuf::constant(10.0, 1.0), 1.4);
  render(
      "Fig. 3(b) — monotonic non-increasing TUF (12-step staircase "
      "approximation, the paper's infinite-level limit)",
      StepTuf::approximate_decay(10.0, 1.0, 12), 1.4);
  render("Fig. 3(c) — multi-level step-downward TUF",
         StepTuf({10.0, 6.0, 3.0}, {0.3, 0.7, 1.0}), 1.4);
  std::printf(
      "paper: \"a multi-level step-downward TUF is able to represent a "
      "wide range of scenarios\" — (a) is its 1-level case and (b) its "
      "many-level limit.\n");
  return 0;
}
