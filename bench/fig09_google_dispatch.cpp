// Figure 9 reproduction (§VII): per-hour request dispatch to each data
// center under Balanced and Optimized on the Google study, plus the
// completion-rate and cost comparison the paper quotes: "All Request1
// and Request2 were completed in Optimized. On the contrary, 99.45%
// request1 and 90.19% request2 were completed in Balance. Even though
// Optimized spent 7.74% more on the cost, it achieved a higher net
// profit."

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::google_study();
  const bench::HeadToHead duel = bench::run_head_to_head(sc, 6);

  std::vector<double> hours;
  for (std::size_t t = 0; t < 6; ++t) hours.push_back(static_cast<double>(t));

  const char* panel = "abcd";
  int panel_idx = 0;
  for (const auto& [policy_name, run] :
       {std::pair<const char*, const RunResult&>{"balanced", duel.balanced},
        {"optimized", duel.optimized}}) {
    for (std::size_t k = 0; k < 2; ++k) {
      std::printf("%s\n",
                  render_multi_series(
                      std::string("Fig. 9(") + panel[panel_idx++] +
                          ") — request" + std::to_string(k + 1) +
                          " allocation using " + policy_name + " approach",
                      hours, {"-> dc1 req/s", "-> dc2 req/s"},
                      {run.class_dc_rate_series(k, 0),
                       run.class_dc_rate_series(k, 1)},
                      "hour")
                      .c_str());
    }
  }

  // Completion percentages per class (paper: 100% vs 99.45% / 90.19%).
  TextTable t({"policy", "request1 completed %", "request2 completed %",
               "total cost $", "net profit $"});
  for (const auto& [policy_name, run] :
       {std::pair<const char*, const RunResult&>{"Optimized",
                                                 duel.optimized},
        {"Balanced", duel.balanced}}) {
    double offered[2] = {0, 0}, completed[2] = {0, 0};
    for (std::size_t t_idx = 0; t_idx < run.slots.size(); ++t_idx) {
      const SlotInput input = sc.slot_input(t_idx);
      for (std::size_t k = 0; k < 2; ++k) {
        offered[k] += input.total_offered(k) * input.slot_seconds;
        for (std::size_t l = 0; l < 2; ++l) {
          const auto& o = run.slots[t_idx].outcomes[k][l];
          if (o.stable) completed[k] += o.rate * input.slot_seconds;
        }
      }
    }
    t.add_row({policy_name,
               format_double(100.0 * completed[0] / offered[0], 2),
               format_double(100.0 * completed[1] / offered[1], 2),
               format_double(run.total.total_cost(), 2),
               format_double(run.total.net_profit(), 2)});
  }
  std::printf("%s", t.render().c_str());
  const double extra_cost =
      100.0 *
      (duel.optimized.total.total_cost() - duel.balanced.total.total_cost()) /
      std::max(1e-9, duel.balanced.total.total_cost());
  std::printf("Optimized spends %.2f%% more on cost yet nets more profit "
              "(paper: +7.74%% cost).\n",
              extra_cost);
  return 0;
}
