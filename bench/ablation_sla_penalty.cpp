// Ablation: SLA violation fees (after the penalty TUFs of the authors'
// predecessor work [17], which the paper's task model calls out: requests
// "may encounter both profit and cost"). Under overload the penalty-free
// optimizer cherry-picks the most profitable traffic and silently drops
// the rest; a per-request fee changes the calculus toward serving
// everything it physically can. Sweep the fee on the overloaded basic
// study and watch the completion rate and the policy gap move.

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"
#include "core/simple_policies.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  std::printf(
      "SLA-penalty ablation — basic study, high arrival set (overload)\n\n");
  TextTable t({"fee $/dropped", "Optimized $", "completed % (opt)",
               "Balanced $", "CostMin $"});
  for (double fee : {0.0, 0.001, 0.004, 0.012, 0.03}) {
    Scenario sc = paper::basic_synthetic(paper::ArrivalSet::kHigh);
    for (auto& cls : sc.topology.classes) {
      cls.drop_penalty_per_request = fee;
    }
    const bench::HeadToHead duel = bench::run_head_to_head(sc, 1);
    CostMinPolicy costmin;
    const RunResult cm = SlotController(sc).run(costmin, 1);
    t.add_row({format_double(fee, 3),
               format_double(duel.optimized.total.net_profit(), 2),
               format_double(
                   100.0 * duel.optimized.total.completed_fraction(), 2),
               format_double(duel.balanced.total.net_profit(), 2),
               format_double(cm.total.net_profit(), 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: fees turn dropped traffic from free into liability.\n"
      "The optimizer's completion rate climbs with the fee (it accepts\n"
      "lower-band service to dodge penalties) and its edge over the\n"
      "penalty-blind heuristics widens — at the highest fee the\n"
      "volume-first CostMin overtakes Balanced for the same reason.\n");
  return 0;
}
