// Ablation (paper §III-B1): TUF shape. The paper argues a multi-level
// step-downward TUF subsumes the constant TUF (one step) and approaches
// any monotone non-increasing TUF as the level count grows (Fig. 3).
// This bench holds the workload fixed and sweeps the level count of a
// staircase approximation to a linear-decay TUF, showing the planned
// profit converging as the staircase refines.

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  std::printf(
      "TUF-shape ablation — staircase approximations of a linear decay\n"
      "(max $0.02 at delay 0, worthless at 200 ms)\n\n");

  TextTable t({"levels", "profiles examined", "net profit $/h",
               "tier hit", "mean delay ms"});
  for (std::size_t levels : {1, 2, 3, 4, 6, 8}) {
    Topology topo;
    topo.classes = {
        {"decay", StepTuf::approximate_decay(0.02, 0.2, levels), 1e-6}};
    topo.frontends = {{"fe"}};
    topo.datacenters = {{"dc", 6, 1.0, {100.0}, {0.002}, 1.0}};
    topo.distance_miles = {{300.0}};

    SlotInput input;
    input.arrival_rate = {{420.0}};
    input.price = {0.05};
    input.slot_seconds = 3600.0;

    OptimizedPolicy policy;
    const DispatchPlan plan = policy.plan_slot(topo, input);
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    const auto& o = m.outcomes[0][0];
    t.add_row({std::to_string(levels),
               std::to_string(policy.profiles_examined()),
               format_double(m.net_profit(), 2),
               o.rate > 0.0 ? std::to_string(o.tuf_level + 1) : "-",
               o.rate > 0.0 ? format_double(o.delay * 1000.0, 1) : "-"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: with one level the controller faces a cliff (full value "
      "or nothing); more levels let it sell partial timeliness, and the "
      "profit converges to the continuous-decay limit while the search "
      "space (and Fig. 11-style cost) grows.\n");
  return 0;
}
