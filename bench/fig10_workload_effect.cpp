// Figure 10 reproduction (§VII-B3): the Google study re-run with scaled
// data-center capacities — (a) relatively low workload (every request
// can be completed by both policies) and (b) relatively high workload
// (neither completes everything). Paper claim: "our optimization is
// superior regardless of workloads".

#include <cstdio>

#include "bench_common.hpp"
#include "core/paper_scenarios.hpp"

using namespace palb;

int main() {
  struct Case {
    const char* label;
    double capacity_scale;
  };
  for (const Case c : {Case{"(a) relatively low workload", 1.8},
                       Case{"(b) relatively high workload", 0.55}}) {
    const Scenario sc = paper::google_study(7, c.capacity_scale);
    const bench::HeadToHead duel = bench::run_head_to_head(sc, 6);
    bench::print_profit_series(std::string("Fig. 10") + c.label, duel);
    std::printf("completed: Optimized %.2f%% | Balanced %.2f%%\n\n",
                100.0 * duel.optimized.total.completed_fraction(),
                100.0 * duel.balanced.total.completed_fraction());
  }
  return 0;
}
