// Extension bench: mean-delay SLAs (the paper's Eq. 1 semantics) versus
// hard p95 latency SLOs. The M/M/1 tail identity lets the same LP
// machinery plan either; this bench prices the difference. For each
// planning metric we replay the WorldCup noon hour stochastically and
// report (a) the analytic profit, (b) what fraction of loaded streams
// actually keep their p95 inside the granted band's sub-deadline.

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "sim/slot_simulator.hpp"
#include "util/table.hpp"

using namespace palb;

namespace {

struct Row {
  const char* label;
  OptimizedPolicy::Options options;
};

}  // namespace

int main() {
  const Scenario sc = paper::worldcup_study();
  SlotInput input = sc.slot_input(12);
  input.slot_seconds = 20000.0;  // long slot => stable percentiles

  std::vector<Row> rows;
  rows.push_back({"mean (paper)", {}});
  for (double p : {0.9, 0.95, 0.99}) {
    OptimizedPolicy::Options opt;
    opt.delay_metric = OptimizedPolicy::DelayMetric::kTailPercentile;
    opt.tail_percentile = p;
    rows.push_back({p == 0.9 ? "p90" : (p == 0.95 ? "p95" : "p99"), opt});
  }

  TextTable t({"planning metric", "net profit $", "served req/s",
               "streams meeting p95", "worst p95/deadline"});
  for (const Row& row : rows) {
    OptimizedPolicy policy(row.options);
    const DispatchPlan plan = policy.plan_slot(sc.topology, input);
    const SlotMetrics m = evaluate_plan(sc.topology, input, plan);

    SlotSimulator::Options sim_opt;
    sim_opt.record_samples = true;
    SlotSimulator sim(sim_opt);
    Rng rng(17);
    const SimOutcome out = sim.simulate(sc.topology, input, plan, rng);

    int loaded = 0, meeting = 0;
    double worst_ratio = 0.0;
    for (std::size_t k = 0; k < sc.topology.num_classes(); ++k) {
      for (std::size_t l = 0; l < sc.topology.num_datacenters(); ++l) {
        const auto& o = m.outcomes[k][l];
        if (o.rate <= 0.0 || o.tuf_level < 0) continue;
        ++loaded;
        const double deadline = sc.topology.classes[k].tuf.sub_deadline(
            static_cast<std::size_t>(o.tuf_level));
        const double p95 = out.sojourn_samples[k][l].quantile(0.95);
        if (p95 <= deadline) ++meeting;
        worst_ratio = std::max(worst_ratio, p95 / deadline);
      }
    }
    t.add_row({row.label, format_double(m.net_profit(), 2),
               format_double(plan.total_rate(), 0),
               std::to_string(meeting) + "/" + std::to_string(loaded),
               format_double(worst_ratio, 2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nReading: mean-planned streams sit at band edges, so their p95\n"
      "runs ~3x past the deadline; tail-planned streams buy headroom\n"
      "(lower profit, sometimes fewer served requests) and keep the p95\n"
      "inside the band. The knob is one option on OptimizedPolicy.\n");
  return 0;
}
