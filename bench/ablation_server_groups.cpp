// Ablation: the shared-profile assumption. OptimizedPolicy gives every
// active server in a data center the same TUF-band profile (DESIGN.md
// §3's exactness caveat); the true optimum may split a DC's fleet into
// groups serving different class sets / bands. This bench measures the
// gap head-on: for each hour of the Google study, enumerate every way to
// split each DC into two fixed-size co-located pools (via
// hetero::split_datacenter, which the optimizer then treats as separate
// "data centers"), optimize each split, and compare the best against the
// unsplit baseline.

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/hetero.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::google_study();
  std::printf(
      "server-group ablation — Google study: shared per-DC profile vs the\n"
      "best two-pool split of each data center (exhaustive over split\n"
      "sizes)\n\n");
  TextTable t({"hour", "shared profile $", "best split $", "gap %",
               "best split (dc1, dc2)"});
  double total_shared = 0.0, total_split = 0.0;
  for (std::size_t hour = 0; hour < 6; ++hour) {
    const SlotInput input = sc.slot_input(hour);
    OptimizedPolicy base;
    const double shared =
        evaluate_plan(sc.topology, input, base.plan_slot(sc.topology, input))
            .net_profit();

    double best = shared;
    std::string best_label = "none";
    const int servers = sc.topology.datacenters[0].num_servers;
    for (int a = 1; a < servers; ++a) {
      for (int b = 1; b < servers; ++b) {
        Scenario split = hetero::split_datacenter(
            sc, 0, {{a, 1.0, 1.0, -1.0}, {servers - a, 1.0, 1.0, -1.0}});
        split = hetero::split_datacenter(
            split, 2, {{b, 1.0, 1.0, -1.0}, {servers - b, 1.0, 1.0, -1.0}});
        const SlotInput split_input = split.slot_input(hour);
        OptimizedPolicy policy;
        const double profit =
            evaluate_plan(split.topology, split_input,
                          policy.plan_slot(split.topology, split_input))
                .net_profit();
        if (profit > best) {
          best = profit;
          best_label = std::to_string(a) + "+" + std::to_string(servers - a) +
                       ", " + std::to_string(b) + "+" +
                       std::to_string(servers - b);
        }
      }
    }
    total_shared += shared;
    total_split += best;
    t.add_row({std::to_string(hour), format_double(shared, 2),
               format_double(best, 2),
               format_double(100.0 * (best - shared) /
                                 std::max(1e-9, shared),
                             2),
               best_label});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\n6-hour totals: shared $%.2f | best split $%.2f (gap %.2f%%)\n"
      "Reading: the shared-profile reduction leaves little on the table\n"
      "at paper scale — splitting pays only when one class's tight band\n"
      "overhead poisons a whole fleet, which the band *choice* already\n"
      "mitigates. This bounds the exactness caveat of DESIGN.md §3\n"
      "empirically.\n",
      total_shared, total_split,
      100.0 * (total_split - total_shared) / std::max(1e-9, total_shared));
  return 0;
}
