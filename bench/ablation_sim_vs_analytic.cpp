// Validation bench: the analytic M/M/1 ledger (what the optimizer plans
// with, Eq. 1) versus a discrete-event stochastic replay of the same
// plans — per-slot net profit, plus the gap between the paper's
// mean-delay revenue accounting and stricter per-request accounting.

#include <cstdio>

#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "sim/slot_simulator.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();
  const SlotController controller(sc);
  OptimizedPolicy policy;
  const RunResult run = controller.run(policy, 24);

  SlotSimulator::Options opt;
  opt.replications = 2;
  SlotSimulator sim(opt);
  Rng rng(99);

  TextTable t({"hour", "analytic $", "simulated $ (mean-delay)",
               "simulated $ (per-request)", "rel.diff %"});
  double analytic_total = 0.0, sim_total = 0.0, strict_total = 0.0;
  for (std::size_t h = 0; h < 24; ++h) {
    const SlotInput input = sc.slot_input(h);
    const SimOutcome out =
        sim.simulate(sc.topology, input, run.plans[h], rng);
    const double analytic = run.slots[h].net_profit();
    const double simulated = out.net_profit_mean_delay();
    analytic_total += analytic;
    sim_total += simulated;
    strict_total += out.net_profit_per_request();
    t.add_row({std::to_string(h), format_double(analytic, 2),
               format_double(simulated, 2),
               format_double(out.net_profit_per_request(), 2),
               format_double(100.0 * relative_difference(analytic, simulated),
                             2)});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nday totals: analytic $%.2f | simulated mean-delay $%.2f "
      "(gap %.2f%%) | simulated per-request $%.2f\n",
      analytic_total, sim_total,
      100.0 * relative_difference(analytic_total, sim_total), strict_total);
  std::printf(
      "Reading: the Eq. 1 planning model tracks the stochastic system "
      "closely; per-request TUF accounting is lower because individual "
      "sojourns straddle band edges that the mean stays inside of.\n");
  return 0;
}
