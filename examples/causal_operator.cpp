// A realistic operator loop: no oracle arrival rates. Each hour the
// controller (1) forecasts the next hour's traffic per stream with a
// Kalman filter, (2) hedges the forecast upward, (3) plans with the
// profit-aware optimizer, and (4) settles the books against what really
// arrived. Also shows exporting the scenario to JSON for the `palb` CLI.
//
// Run: ./causal_operator

#include <cstdio>

#include "core/optimized_policy.hpp"
#include "core/paper_scenarios.hpp"
#include "core/scenario_json.hpp"
#include "forecast/forecasting_controller.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  const Scenario sc = paper::worldcup_study();

  // The same scenario as a file your ops tooling can version:
  //   ./palb run worldcup.json --policy optimized
  scenario_json::save(sc, "worldcup.json");
  std::printf("scenario exported to worldcup.json\n\n");

  ForecastingController::Options options;
  options.forecast_inflation = 1.2;  // hedge against burst noise
  options.warmup_slots = 24;         // one day of history before scoring
  ForecastingController controller(sc, KalmanForecaster(25.0, 400.0),
                                   options);

  OptimizedPolicy policy;
  const ForecastRunResult result = controller.run(policy, 24, 24);

  TextTable t({"hour", "net profit $", "servers on", "completed %"});
  for (std::size_t h = 0; h < 24; ++h) {
    const SlotMetrics& m = result.run.slots[h];
    t.add_row({std::to_string(h), format_double(m.net_profit(), 2),
               std::to_string(m.servers_on),
               format_double(100.0 * m.completed_fraction(), 1)});
  }
  std::printf("%s", t.render().c_str());

  double rmse = 0.0;
  for (const auto& e : result.errors) rmse += e.rmse();
  rmse /= static_cast<double>(result.errors.size());
  std::printf(
      "\nweek ledger: $%.2f net profit | forecast RMSE %.1f req/s\n"
      "Compare with the oracle: ./palb run worldcup.json --policy "
      "optimized --first 24\n",
      result.run.total.net_profit(), rmse);
  return 0;
}
