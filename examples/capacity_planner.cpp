// Capacity planning with the profit model: for a fixed diurnal workload,
// sweep the fleet size of a two-location deployment and report the
// day-long net profit plus how many servers the controller actually
// powers per hour. Demonstrates using the library for a what-if study
// rather than online control.
//
// Run: ./capacity_planner

#include <cstdio>

#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "market/price_library.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace palb;

namespace {

Scenario make_scenario(int servers_per_dc) {
  Scenario sc;
  sc.topology.classes = {
      {"web", StepTuf::constant(0.008, 0.08), 1e-6},
      {"api", StepTuf({0.016, 0.008}, {0.05, 0.12}), 1.5e-6},
  };
  sc.topology.frontends = {{"gateway"}};
  sc.topology.datacenters = {
      {"houston", servers_per_dc, 1.0, {130.0, 110.0}, {0.002, 0.003}, 1.1},
      {"atlanta", servers_per_dc, 1.0, {120.0, 120.0}, {0.002, 0.002}, 1.1},
  };
  sc.topology.distance_miles = {{600.0, 500.0}};
  sc.prices = {prices::houston_tx(), prices::atlanta_ga()};

  Rng rng(2024);
  workload::WorldCupParams wp;
  wp.base_rate = 60.0;
  wp.daily_peak = 420.0;
  wp.burst_sigma = 0.1;
  const RateTrace web = workload::worldcup_like("web", wp, rng);
  sc.arrivals = {{web}, {web.shifted(2).scaled(0.6)}};
  sc.slot_seconds = 3600.0;
  return sc;
}

}  // namespace

int main() {
  TextTable table({"servers/DC", "day profit $", "peak servers on",
                   "mean servers on", "completed %"});
  for (int servers = 2; servers <= 12; servers += 2) {
    const SlotController controller(make_scenario(servers));
    OptimizedPolicy policy;
    const RunResult run = controller.run(policy, 24);
    int peak_on = 0;
    double sum_on = 0.0;
    for (const auto& m : run.slots) {
      peak_on = std::max(peak_on, m.servers_on);
      sum_on += m.servers_on;
    }
    table.add_row({std::to_string(servers),
                   format_double(run.total.net_profit(), 2),
                   std::to_string(peak_on), format_double(sum_on / 24.0, 1),
                   format_double(100.0 * run.total.completed_fraction(), 1)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: profit saturates once the fleet covers peak demand —\n"
      "beyond that extra servers never power on (the model's energy cost\n"
      "is per request, so idle capacity costs nothing here; add a static\n"
      "power term per powered server to study right-sizing further).\n");
  return 0;
}
