// Geographic electricity arbitrage: a single energy-heavy request class,
// three data centers priced by the embedded Fig. 1 curves (Houston /
// Mountain View / Atlanta), a full 24-hour day. Shows the optimizer
// shifting load hour by hour toward whichever location is currently
// cheap — the core opportunity the paper exploits.
//
// Run: ./geo_arbitrage

#include <cstdio>

#include "core/controller.hpp"
#include "core/optimized_policy.hpp"
#include "market/price_library.hpp"
#include "util/table.hpp"
#include "workload/generators.hpp"

using namespace palb;

int main() {
  Scenario sc;
  // One class: energy-heavy batch-ish requests (0.02 kWh each — two
  // orders above a web search) so the electricity bill drives decisions.
  sc.topology.classes = {{"batch", StepTuf::constant(0.004, 0.5), 0.0}};
  sc.topology.frontends = {{"gateway"}};
  sc.topology.datacenters = {
      {"houston", 8, 1.0, {120.0}, {0.02}, 1.0},
      {"mountain-view", 8, 1.0, {120.0}, {0.02}, 1.0},
      {"atlanta", 8, 1.0, {120.0}, {0.02}, 1.0},
  };
  sc.topology.distance_miles = {{800.0, 800.0, 800.0}};  // symmetric wire
  sc.prices = prices::figure1_set();
  // Demand fits easily into ~1.5 data centers: room to choose.
  sc.arrivals = {{workload::constant("batch", 400.0, 24)}};
  sc.slot_seconds = 3600.0;

  const SlotController controller(sc);
  OptimizedPolicy policy;
  const RunResult run = controller.run(policy, 24);

  TextTable table({"hour", "p(hou)", "p(mv)", "p(atl)", "-> hou req/s",
                   "-> mv req/s", "-> atl req/s"});
  for (std::size_t t = 0; t < 24; ++t) {
    table.add_row(
        {std::to_string(t), format_double(sc.prices[0].at(t), 3),
         format_double(sc.prices[1].at(t), 3),
         format_double(sc.prices[2].at(t), 3),
         format_double(run.plans[t].class_dc_rate(0, 0), 0),
         format_double(run.plans[t].class_dc_rate(0, 1), 0),
         format_double(run.plans[t].class_dc_rate(0, 2), 0)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("day net profit: $%.2f  (energy bill: $%.2f)\n",
              run.total.net_profit(), run.total.energy_cost);

  // Sanity narrative: the most expensive location at 15:00 should carry
  // the least load at 15:00.
  std::size_t priciest = 0;
  for (std::size_t l = 1; l < 3; ++l) {
    if (sc.prices[l].at(15) > sc.prices[priciest].at(15)) priciest = l;
  }
  std::printf("at 15:00 the priciest location (%s) carries %.0f req/s\n",
              sc.topology.datacenters[priciest].name.c_str(),
              run.plans[15].class_dc_rate(0, priciest));
  return 0;
}
