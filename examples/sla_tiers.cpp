// Multi-level SLAs under pressure: a three-level step-downward TUF
// ($0.03 within 30 ms, $0.02 within 80 ms, $0.01 within 200 ms) served
// by one data center while demand ramps from idle to overload. Shows the
// optimizer gracefully sliding streams down the utility ladder instead
// of dropping them — the behaviour the paper's multi-level TUF model
// (Eq. 16) exists to enable.
//
// Run: ./sla_tiers

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/optimized_policy.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  Topology topo;
  topo.classes = {
      {"tiered", StepTuf({0.03, 0.02, 0.01}, {0.03, 0.08, 0.20}), 0.0}};
  topo.frontends = {{"fe"}};
  topo.datacenters = {{"dc", 6, 1.0, {100.0}, {0.002}, 1.0}};
  topo.distance_miles = {{100.0}};
  topo.validate();

  OptimizedPolicy policy;
  TextTable table({"offered req/s", "served req/s", "tier hit",
                   "mean delay ms", "net profit $/h"});
  for (double demand = 50.0; demand <= 900.0; demand += 85.0) {
    SlotInput input;
    input.arrival_rate = {{demand}};
    input.price = {0.05};
    input.slot_seconds = 3600.0;

    const DispatchPlan plan = policy.plan_slot(topo, input);
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    const auto& outcome = m.outcomes[0][0];
    table.add_row(
        {format_double(demand, 0), format_double(outcome.rate, 1),
         outcome.rate > 0.0 ? std::to_string(outcome.tuf_level + 1) : "-",
         outcome.rate > 0.0 ? format_double(outcome.delay * 1000.0, 1) : "-",
         format_double(m.net_profit(), 2)});
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nReading: as demand grows past a tier's capacity the optimizer\n"
      "drops the stream to the next sub-deadline (cheaper per request,\n"
      "but far better than rejecting traffic), exactly the trade the\n"
      "multi-level TUF encodes.\n");
  return 0;
}
