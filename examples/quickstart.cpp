// Quickstart: build a two-data-center cloud, describe two request types
// with step-downward TUFs, and let the profit-aware optimizer plan one
// hour of dispatching. Prints the routing matrix, the per-VM CPU shares,
// and the dollar ledger next to the profit-oblivious Balanced baseline.
//
// Run: ./quickstart

#include <cstdio>

#include "cloud/accounting.hpp"
#include "core/balanced_policy.hpp"
#include "core/optimized_policy.hpp"
#include "util/table.hpp"

using namespace palb;

int main() {
  // --- 1. Static system description. --------------------------------------
  Topology topo;
  // A "web" request is worth $0.01 if answered within 100 ms on average.
  // An "api" request is worth $0.02 within 50 ms, degrading to $0.01 up
  // to 150 ms (a two-level SLA).
  topo.classes = {
      {"web", StepTuf::constant(0.01, 0.10), 1e-6},
      {"api", StepTuf({0.02, 0.01}, {0.05, 0.15}), 2e-6},
  };
  topo.frontends = {{"us-east"}, {"us-west"}};
  topo.datacenters = {
      // name, servers, capacity, mu per class (req/s), kWh per request, PUE
      {"texas", 4, 1.0, {100.0, 90.0}, {0.002, 0.003}, 1.1},
      {"california", 4, 1.0, {140.0, 80.0}, {0.003, 0.002}, 1.2},
  };
  topo.distance_miles = {{200.0, 1500.0}, {1700.0, 150.0}};
  topo.validate();

  // --- 2. One control slot: arrivals + electricity prices. ----------------
  SlotInput input;
  input.arrival_rate = {{60.0, 40.0}, {30.0, 50.0}};  // [class][front-end]
  input.price = {0.04, 0.09};                         // $/kWh
  input.slot_seconds = 3600.0;

  // --- 3. Plan the slot with both policies. -------------------------------
  OptimizedPolicy optimized;
  BalancedPolicy balanced;
  const DispatchPlan opt_plan = optimized.plan_slot(topo, input);
  const DispatchPlan bal_plan = balanced.plan_slot(topo, input);

  // --- 4. Show the optimized routing and allocation. ----------------------
  std::printf("Optimized dispatch (req/s):\n");
  TextTable routing({"class", "front-end", "-> texas", "-> california"});
  for (std::size_t k = 0; k < topo.num_classes(); ++k) {
    for (std::size_t s = 0; s < topo.num_frontends(); ++s) {
      routing.add_row({topo.classes[k].name, topo.frontends[s].name,
                       format_double(opt_plan.rate[k][s][0], 1),
                       format_double(opt_plan.rate[k][s][1], 1)});
    }
  }
  std::printf("%s\n", routing.render().c_str());

  TextTable alloc({"data center", "servers on", "share(web)", "share(api)"});
  for (std::size_t l = 0; l < topo.num_datacenters(); ++l) {
    alloc.add_row({topo.datacenters[l].name,
                   std::to_string(opt_plan.dc[l].servers_on),
                   format_double(opt_plan.dc[l].share[0], 3),
                   format_double(opt_plan.dc[l].share[1], 3)});
  }
  std::printf("%s\n", alloc.render().c_str());

  // --- 5. Compare the hourly ledgers. --------------------------------------
  TextTable ledger({"policy", "revenue $", "energy $", "transfer $",
                    "net profit $", "completed %"});
  for (const auto& [name, plan] :
       {std::pair<const char*, const DispatchPlan&>{"Optimized", opt_plan},
        {"Balanced", bal_plan}}) {
    const SlotMetrics m = evaluate_plan(topo, input, plan);
    ledger.add_row({name, format_double(m.revenue, 2),
                    format_double(m.energy_cost, 2),
                    format_double(m.transfer_cost, 2),
                    format_double(m.net_profit(), 2),
                    format_double(100.0 * m.completed_fraction(), 2)});
  }
  std::printf("%s", ledger.render().c_str());
  return 0;
}
